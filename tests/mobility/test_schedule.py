"""Unit tests for user profiles and daily schedules."""

import numpy as np
import pytest

from repro.errors import GeoError
from repro.geo.point import GeoPoint
from repro.mobility.schedule import DailySchedule, Stay, UserProfile
from repro.units import DAY, HOUR

HOME = GeoPoint(44.80, -0.60)
WORK = GeoPoint(44.84, -0.57)
CAFE = GeoPoint(44.83, -0.58)


def make_profile(**overrides) -> UserProfile:
    defaults = dict(
        user="u",
        home=HOME,
        work=WORK,
        leisure=(CAFE,),
        leisure_probability=0.5,
        home_day_probability=0.1,
    )
    defaults.update(overrides)
    return UserProfile(**defaults)


class TestStay:
    def test_dwell(self):
        stay = Stay(HOME, 0.0, 3600.0)
        assert stay.dwell == 3600.0

    def test_backwards_rejected(self):
        with pytest.raises(GeoError):
            Stay(HOME, 100.0, 50.0)

    def test_zero_length_rejected(self):
        with pytest.raises(GeoError):
            Stay(HOME, 100.0, 100.0)


class TestDailySchedule:
    def test_overlap_rejected(self):
        with pytest.raises(GeoError):
            DailySchedule(
                stays=(Stay(HOME, 0.0, 10 * HOUR), Stay(WORK, 9 * HOUR, 17 * HOUR))
            )

    def test_touching_stays_allowed(self):
        DailySchedule(stays=(Stay(HOME, 0.0, 9 * HOUR), Stay(WORK, 9 * HOUR, 17 * HOUR)))


class TestSampleDay:
    def test_schedule_is_ordered_and_within_day(self):
        profile = make_profile()
        rng = np.random.default_rng(1)
        for _ in range(50):
            schedule = profile.sample_day(rng)
            for stay in schedule.stays:
                assert 0.0 <= stay.start < stay.end <= DAY

    def test_home_day_probability_one_gives_all_home(self):
        profile = make_profile(home_day_probability=1.0)
        schedule = profile.sample_day(np.random.default_rng(2))
        assert len(schedule.stays) == 1
        assert schedule.stays[0].place == HOME
        assert schedule.stays[0].dwell == DAY

    def test_work_day_contains_home_and_work(self):
        profile = make_profile(home_day_probability=0.0, leisure_probability=0.0)
        schedule = profile.sample_day(np.random.default_rng(3))
        labels = [stay.label for stay in schedule.stays]
        assert labels[0] == "home"
        assert "work" in labels
        assert labels[-1] == "home"

    def test_leisure_appears_with_probability_one(self):
        profile = make_profile(home_day_probability=0.0, leisure_probability=1.0)
        rng = np.random.default_rng(4)
        found = sum(
            "leisure" in [s.label for s in profile.sample_day(rng).stays]
            for _ in range(30)
        )
        # The leisure stop is skipped only when the work day ends too late.
        assert found >= 20

    def test_no_leisure_with_probability_zero(self):
        profile = make_profile(home_day_probability=0.0, leisure_probability=0.0)
        rng = np.random.default_rng(5)
        for _ in range(30):
            labels = [s.label for s in profile.sample_day(rng).stays]
            assert "leisure" not in labels

    def test_work_stay_at_work_place(self):
        profile = make_profile(home_day_probability=0.0)
        schedule = profile.sample_day(np.random.default_rng(6))
        work_stays = [s for s in schedule.stays if s.label == "work"]
        assert len(work_stays) == 1
        assert work_stays[0].place == WORK
        assert work_stays[0].dwell >= 4 * HOUR
