"""Unit tests for the mobility generator."""

import numpy as np
import pytest

from repro.errors import GeoError
from repro.geo.distance import haversine_m
from repro.mobility.generator import GeneratorConfig, MobilityGenerator
from repro.units import DAY, HOUR


class TestConfigValidation:
    def test_defaults_valid(self):
        GeneratorConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_users": 0},
            {"n_days": 0},
            {"sampling_period": 0.0},
            {"dropout": 1.0},
            {"dropout": -0.1},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(GeoError):
            GeneratorConfig(**kwargs)


class TestGeneration:
    def test_population_size(self, small_population):
        assert len(small_population.dataset) == 5
        assert len(small_population.profiles) == 5
        assert len(small_population.truth.users) == 5

    def test_deterministic_per_seed(self):
        config = GeneratorConfig(n_users=2, n_days=1)
        a = MobilityGenerator(config).generate(seed=7)
        b = MobilityGenerator(config).generate(seed=7)
        ta = a.dataset.get("user-0000")
        tb = b.dataset.get("user-0000")
        assert ta.records == tb.records

    def test_different_seeds_differ(self):
        config = GeneratorConfig(n_users=2, n_days=1)
        a = MobilityGenerator(config).generate(seed=7)
        b = MobilityGenerator(config).generate(seed=8)
        assert a.dataset.get("user-0000").records != b.dataset.get("user-0000").records

    def test_trace_spans_requested_days(self, small_population):
        for trajectory in small_population.dataset:
            assert trajectory.start_time >= 0.0
            assert trajectory.end_time <= 3 * DAY
            assert trajectory.duration > 2 * DAY  # covers most of the span

    def test_record_rate_respects_sampling_and_dropout(self, small_population):
        config = GeneratorConfig(n_users=5, n_days=3, sampling_period=120.0)
        expected = 3 * DAY / config.sampling_period
        for trajectory in small_population.dataset:
            assert len(trajectory) == pytest.approx(expected, rel=0.1)

    def test_dropout_thins_records(self):
        base = GeneratorConfig(n_users=2, n_days=1, dropout=0.0)
        thinned = GeneratorConfig(n_users=2, n_days=1, dropout=0.5)
        full = MobilityGenerator(base).generate(seed=3)
        half = MobilityGenerator(thinned).generate(seed=3)
        n_full = full.dataset.n_records
        n_half = half.dataset.n_records
        assert n_half == pytest.approx(n_full * 0.5, rel=0.1)

    def test_gps_noise_scale(self):
        # With all-day home stays, fixes should scatter ~noise around home.
        config = GeneratorConfig(n_users=3, n_days=2, gps_noise_m=10.0)
        population = MobilityGenerator(config).generate(seed=21)
        for user, profile in population.profiles.items():
            trajectory = population.dataset.get(user)
            night = trajectory.slice_time(0, 4 * HOUR)  # everyone is home then
            assert night is not None
            errors = [haversine_m(r.point, profile.home) for r in night]
            assert np.mean(errors) < 50.0


class TestGroundTruth:
    def test_every_user_has_home_and_work_visits(self, small_population):
        for user, truth in small_population.truth.users.items():
            labels = {visit.label for visit in truth.visits}
            assert "home" in labels
            profile = small_population.profiles[user]
            assert truth.home == profile.home
            assert truth.work == profile.work

    def test_visits_ordered_within_days(self, small_population):
        for truth in small_population.truth.users.values():
            for visit in truth.visits:
                assert visit.end > visit.start

    def test_pois_ranked_by_dwell(self, small_population):
        for user in small_population.dataset.users:
            truth = small_population.truth.users[user]
            pois = truth.pois()
            # Home dominates dwell (all nights), so it must rank first.
            assert pois[0] == truth.home

    def test_min_dwell_filter(self, small_population):
        for user in small_population.dataset.users:
            all_pois = small_population.truth.pois_of(user)
            long_pois = small_population.truth.pois_of(user, min_total_dwell=10 * HOUR)
            assert set(long_pois) <= set(all_pois)

    def test_match_rate_bounds(self, small_population):
        truth = small_population.truth
        user = small_population.dataset.users[0]
        pois = truth.pois_of(user)
        assert truth.match_rate(user, pois, radius_m=1.0) == 1.0
        assert truth.match_rate(user, [], radius_m=100.0) == 0.0


class TestProfiles:
    def test_distinct_home_work_pairs(self, medium_population):
        pairs = {
            (profile.home, profile.work)
            for profile in medium_population.profiles.values()
        }
        assert len(pairs) == len(medium_population.profiles)

    def test_leisure_venues_from_city(self, small_population):
        city_leisure = set(small_population.city.leisure)
        for profile in small_population.profiles.values():
            assert set(profile.leisure) <= city_leisure
