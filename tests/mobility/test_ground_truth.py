"""Dedicated edge-case tests for ground-truth records."""

import pytest

from repro.geo.point import GeoPoint
from repro.mobility.ground_truth import GroundTruth, PoiVisit, UserTruth

HOME = GeoPoint(44.80, -0.60)
WORK = GeoPoint(44.84, -0.56)
CAFE = GeoPoint(44.82, -0.58)


def visit(place: GeoPoint, start: float, hours: float, label: str = "x") -> PoiVisit:
    return PoiVisit(place=place, start=start, end=start + hours * 3600.0, label=label)


@pytest.fixture()
def truth() -> GroundTruth:
    truth = GroundTruth(users={"u": UserTruth(user="u", home=HOME, work=WORK)})
    truth.add_visit("u", visit(HOME, 0, 10, "home"))
    truth.add_visit("u", visit(WORK, 40000, 8, "work"))
    truth.add_visit("u", visit(CAFE, 70000, 1, "leisure"))
    truth.add_visit("u", visit(HOME, 76000, 2, "home"))
    return truth


class TestPoiRanking:
    def test_ordered_by_total_dwell(self, truth):
        pois = truth.pois_of("u")
        assert pois == [HOME, WORK, CAFE]  # 12h, 8h, 1h

    def test_min_dwell_cuts_tail(self, truth):
        pois = truth.pois_of("u", min_total_dwell=2 * 3600.0)
        assert CAFE not in pois
        assert pois == [HOME, WORK]

    def test_no_visits_empty(self):
        truth = GroundTruth(users={"v": UserTruth(user="v", home=HOME, work=WORK)})
        assert truth.pois_of("v") == []


class TestMatchRate:
    def test_exact_match(self, truth):
        assert truth.match_rate("u", [HOME, WORK, CAFE], radius_m=10.0) == 1.0

    def test_partial_match(self, truth):
        assert truth.match_rate("u", [HOME], radius_m=10.0) == pytest.approx(1 / 3)

    def test_radius_tolerance(self, truth):
        near_home = GeoPoint(HOME.lat + 0.001, HOME.lon)  # ~111 m away
        assert truth.match_rate("u", [near_home], radius_m=50.0) == 0.0
        assert truth.match_rate("u", [near_home], radius_m=150.0) == pytest.approx(1 / 3)

    def test_min_dwell_interacts(self, truth):
        rate = truth.match_rate(
            "u", [CAFE], radius_m=10.0, min_total_dwell=2 * 3600.0
        )
        assert rate == 0.0  # CAFE filtered out of the reference set

    def test_empty_candidates(self, truth):
        assert truth.match_rate("u", [], radius_m=100.0) == 0.0

    def test_no_truth_user_zero(self):
        truth = GroundTruth(users={"v": UserTruth(user="v", home=HOME, work=WORK)})
        assert truth.match_rate("v", [HOME], radius_m=100.0) == 0.0


class TestPoiVisit:
    def test_dwell(self):
        assert visit(HOME, 0, 2).dwell == 7200.0
