"""Unit tests for mobility statistics and GeoJSON export."""

import json

import pytest

from repro.geo.grid import SpatialGrid
from repro.mobility.geojson import (
    dataset_to_geojson,
    poi_feature,
    pois_to_geojson,
    trajectory_feature,
    write_geojson,
)
from repro.mobility.stats import (
    daily_distance_km,
    radius_of_gyration_m,
    summarize,
    visited_cell_entropy,
)
from repro.privacy import PoiAttack
from repro.mobility.dataset import MobilityDataset
from tests.conftest import make_trajectory


class TestRadiusOfGyration:
    def test_stationary_is_small(self):
        trajectory = make_trajectory(
            points=[(44.80, -0.58)] * 3, times=[0.0, 60.0, 120.0]
        )
        assert radius_of_gyration_m(trajectory) < 1.0

    def test_commuters_in_km_range(self, medium_population):
        for trajectory in medium_population.dataset:
            gyration = radius_of_gyration_m(trajectory)
            assert 200.0 < gyration < 20_000.0


class TestDailyDistance:
    def test_one_value_per_day(self, small_population):
        trajectory = small_population.dataset.get(small_population.dataset.users[0])
        distances = daily_distance_km(trajectory)
        assert len(distances) == 3
        assert all(d >= 0 for d in distances)


class TestEntropy:
    def test_single_cell_zero_entropy(self, small_population):
        grid = SpatialGrid(small_population.city.bounding_box, cell_size_m=500.0)
        stationary = make_trajectory(
            points=[(44.8378, -0.5792)] * 5, times=[60.0 * i for i in range(5)]
        )
        assert visited_cell_entropy(stationary, grid) == 0.0

    def test_real_users_positive_entropy(self, small_population):
        grid = SpatialGrid(small_population.city.bounding_box, cell_size_m=500.0)
        for trajectory in small_population.dataset:
            assert visited_cell_entropy(trajectory, grid) > 0.5


class TestSummary:
    def test_fields_consistent(self, small_population):
        summary = summarize(small_population.dataset)
        assert summary.n_users == 5
        assert summary.n_records == small_population.dataset.n_records
        assert summary.span_days == pytest.approx(3.0, abs=0.1)
        assert summary.mean_records_per_user == pytest.approx(
            summary.n_records / 5, rel=0.01
        )
        assert "users=5" in summary.to_text()

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize(MobilityDataset([]))


class TestGeoJson:
    def test_trajectory_feature_structure(self):
        trajectory = make_trajectory()
        feature = trajectory_feature(trajectory)
        assert feature["geometry"]["type"] == "LineString"
        assert len(feature["geometry"]["coordinates"]) == len(trajectory)
        lon, lat = feature["geometry"]["coordinates"][0]
        assert lat == trajectory.records[0].lat
        assert lon == trajectory.records[0].lon

    def test_dataset_collection(self, small_population):
        collection = dataset_to_geojson(small_population.dataset)
        assert collection["type"] == "FeatureCollection"
        assert len(collection["features"]) == 5

    def test_poi_features(self, small_population):
        pois = PoiAttack().run(small_population.dataset)
        collection = pois_to_geojson(pois)
        assert all(
            feature["geometry"]["type"] == "Point"
            for feature in collection["features"]
        )
        assert all("user" in f["properties"] for f in collection["features"])

    def test_bare_point_feature(self):
        from repro.geo.point import GeoPoint

        feature = poi_feature(GeoPoint(44.8, -0.58))
        assert feature["geometry"]["coordinates"] == [-0.58, 44.8]

    def test_write_valid_json(self, tmp_path, small_population):
        path = tmp_path / "out.geojson"
        write_geojson(dataset_to_geojson(small_population.dataset), path)
        loaded = json.loads(path.read_text())
        assert loaded["type"] == "FeatureCollection"
