"""Shared helpers for the streaming tier tests."""

from __future__ import annotations

import pytest

from repro.simulation import Simulator
from repro.store import DatasetStore, IngestPipeline
from repro.streams import StreamEngine


@pytest.fixture()
def sim() -> Simulator:
    return Simulator()


def build_stream(
    sim: Simulator,
    n_shards: int = 2,
    flush_delay: float = 0.5,
    pane_seconds: float = 60.0,
    allowed_lateness: float = 0.0,
    **engine_kwargs,
) -> tuple[DatasetStore, IngestPipeline, StreamEngine]:
    """A pipeline + store + attached engine on one simulator."""
    store = DatasetStore(n_shards=n_shards, segment_capacity=512)
    pipeline = IngestPipeline(sim, store, flush_delay=flush_delay)
    engine = StreamEngine(
        sim=sim,
        pane_seconds=pane_seconds,
        allowed_lateness=allowed_lateness,
        **engine_kwargs,
    ).attach(pipeline)
    return store, pipeline, engine


def replay(sim: Simulator, pipeline: IngestPipeline, records, batch: int = 20) -> None:
    """Submit ``records`` (time-sorted) at their own timestamps."""
    for start in range(0, len(records), batch):
        chunk = records[start : start + batch]
        sim.run_until(max(sim.now, chunk[0].time))
        pipeline.submit(chunk)
    sim.run()
    pipeline.flush_all()
