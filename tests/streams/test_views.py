"""Pane state and window snapshots: assembly and merging."""

import numpy as np
import pytest

from repro.errors import StreamError
from repro.streams import PaneStats, merge_snapshots, snapshot_from_panes


def pane(start=0.0, end=60.0) -> PaneStats:
    return PaneStats(start, end)


def filled_pane(start, end, users, cells, values, lags=None):
    stats = pane(start, end)
    lags = lags if lags is not None else [None] * len(users)
    for user, cell, value, lag in zip(users, cells, values, lags):
        stats.update(user, cell, value, lag)
    return stats


class TestPaneStats:
    def test_update_accumulates(self):
        stats = filled_pane(
            0.0, 60.0,
            users=["a", "a", "b"],
            cells=[(0, 0), (0, 1), (0, 0)],
            values=[1.0, 2.0, 3.0],
            lags=[0.5, 0.5, 1.5],
        )
        assert stats.records == 3
        assert stats.user_counts == {"a": 2, "b": 1}
        assert stats.cells == {(0, 0), (0, 1)}
        assert len(stats.value_sketches[0.5]) == 3
        assert len(stats.lag_sketches[0.95]) == 3

    def test_optional_fields_skipped(self):
        stats = pane()
        stats.update("a", None, None, None)
        assert stats.records == 1
        assert stats.cells == set()
        assert len(stats.value_sketches[0.5]) == 0
        assert len(stats.lag_sketches[0.5]) == 0


class TestSnapshotFromPanes:
    def test_merges_pane_span(self):
        first = filled_pane(0.0, 60.0, ["a", "b"], [(0, 0), (1, 1)], [1.0, 2.0])
        second = filled_pane(60.0, 120.0, ["a"], [(2, 2)], [3.0])
        snapshot = snapshot_from_panes("t", "v", 0.0, 120.0, [first, second])
        assert snapshot.records == 3
        assert snapshot.n_users == 2
        assert snapshot.user_counts == {"a": 2, "b": 1}
        assert snapshot.cells == {(0, 0), (1, 1), (2, 2)}
        assert snapshot.rate == pytest.approx(3 / 120.0)
        assert snapshot.duration == 120.0

    def test_empty_window_still_observable(self):
        snapshot = snapshot_from_panes("t", "v", 0.0, 60.0, [])
        assert snapshot.records == 0
        assert snapshot.rate == 0.0
        assert snapshot.coverage_cells == 0
        assert snapshot.value_quantile(0.5) == 0.0
        assert "0 rec" in snapshot.to_text()

    def test_top_users_ranked_then_lexicographic(self):
        stats = filled_pane(
            0.0, 60.0,
            users=["c", "a", "b", "a", "b"],
            cells=[None] * 5,
            values=[None] * 5,
        )
        snapshot = snapshot_from_panes("t", "v", 0.0, 60.0, [stats])
        assert snapshot.top_users(2) == (("a", 2), ("b", 2))
        assert snapshot.top_users() == (("a", 2), ("b", 2), ("c", 1))

    def test_percentiles_track_pane_values(self):
        values = list(np.linspace(0.0, 100.0, 101))
        stats = filled_pane(
            0.0, 60.0, [f"u{i}" for i in range(101)], [None] * 101, values
        )
        snapshot = snapshot_from_panes("t", "v", 0.0, 60.0, [stats])
        assert snapshot.value_quantile(0.5) == pytest.approx(50.0, abs=3.0)
        assert snapshot.value_quantile(0.95) == pytest.approx(95.0, abs=3.0)


class TestMergeSnapshots:
    def test_same_window_snapshots_fold(self):
        left = snapshot_from_panes(
            "t", "v", 0.0, 60.0,
            [filled_pane(0.0, 60.0, ["a"], [(0, 0)], [1.0])],
        )
        right = snapshot_from_panes(
            "t", "v", 0.0, 60.0,
            [filled_pane(0.0, 60.0, ["a", "b"], [(0, 1), (0, 0)], [2.0, 3.0])],
        )
        merged = merge_snapshots([left, right])
        assert merged.records == 3
        assert merged.user_counts == {"a": 2, "b": 1}
        assert merged.cells == {(0, 0), (0, 1)}

    def test_zero_snapshots_rejected(self):
        with pytest.raises(StreamError):
            merge_snapshots([])

    def test_different_windows_rejected(self):
        a = snapshot_from_panes("t", "v", 0.0, 60.0, [])
        b = snapshot_from_panes("t", "v", 60.0, 120.0, [])
        with pytest.raises(StreamError):
            merge_snapshots([a, b])

    def test_different_tasks_rejected(self):
        a = snapshot_from_panes("t1", "v", 0.0, 60.0, [])
        b = snapshot_from_panes("t2", "v", 0.0, 60.0, [])
        with pytest.raises(StreamError):
            merge_snapshots([a, b])
