"""Boundary-semantics regressions: one shared half-open contract.

The platform has one time-interval convention everywhere a record is
assigned to a range: **half-open** ``[t0, t1)``.  These tests pin the
three places the audit covered — :meth:`DatasetStore.scan_time`, pane
assignment in the stream engine, and watermark close — so an event
timestamped exactly at a pane end lands in exactly one pane, and a
batch scan over a window's bounds returns exactly the live view's
records.
"""

from __future__ import annotations

import numpy as np

from repro.simulation import Simulator
from repro.store import DatasetStore
from repro.store.segment import SegmentBuilder
from repro.streams import WindowSpec
from tests.store.conftest import make_record
from tests.streams.conftest import build_stream

PANE = 300.0


def boundary_records():
    """Events on and around every pane boundary of [0, 900].

    All from one user so the whole batch rides one shard flush —
    cross-shard flush interleaving under zero allowed lateness is the
    late-record path, exercised separately below.
    """
    times = [0.0, 150.0, 299.999, 300.0, 450.0, 599.0, 600.0, 600.001, 900.0]
    return [make_record(user="u0", time=t) for t in times]


class TestStoreScanBoundaries:
    def test_scan_time_is_half_open(self, sim):
        store = DatasetStore(n_shards=1)
        store.append(boundary_records())
        batch = store.scan_time("t", 300.0, 600.0)
        # t=300.0 (== t0) included, t=600.0 (== t1) excluded.
        assert sorted(batch.time.tolist()) == [300.0, 450.0, 599.0]

    def test_every_record_in_exactly_one_adjacent_range(self, sim):
        store = DatasetStore(n_shards=1)
        store.append(boundary_records())
        counts = [
            len(store.scan_time("t", t0, t0 + PANE)) for t0 in (0.0, 300.0, 600.0, 900.0)
        ]
        assert sum(counts) == store.n_records  # nothing lost, nothing doubled

    def test_segment_pruning_keeps_t0_boundary_record(self):
        # A segment whose newest record sits exactly at t0 must not be
        # pruned: t_max == t0 still matches the inclusive lower bound.
        builder = SegmentBuilder(8)
        time = np.array([100.0, 300.0])
        col = np.array([0.0, 0.0])
        builder.append(time, col, col, col, np.array([0, 0]), 0, 2)
        segment = builder.seal()
        assert segment.overlaps_time(300.0, 600.0)
        assert not segment.overlaps_time(300.001, 600.0)
        # ...and t_min == t1 is excluded (half-open upper bound).
        assert not segment.overlaps_time(0.0, 100.0)
        assert segment.overlaps_time(0.0, 100.001)


class TestPaneAssignmentBoundaries:
    def test_boundary_event_lands_in_exactly_one_pane(self, sim):
        _, pipeline, engine = build_stream(sim, pane_seconds=PANE)
        engine.register_view("w", WindowSpec.tumbling(PANE))
        pipeline.submit(boundary_records())
        sim.run()
        pipeline.flush_all()
        engine.finalize()
        snapshots = engine.snapshots("t", "w")
        by_window = {(s.start, s.end): s.records for s in snapshots}
        # t=300.0 belongs to [300, 600) — not [0, 300).
        assert by_window[(0.0, 300.0)] == 3  # 0.0, 150.0, 299.999
        assert by_window[(300.0, 600.0)] == 3  # 300.0, 450.0, 599.0
        assert by_window[(600.0, 900.0)] == 2  # 600.0, 600.001
        assert by_window[(900.0, 1200.0)] == 1  # 900.0
        assert sum(by_window.values()) == len(boundary_records())
        assert engine.stats.late_records == 0

    def test_batch_scan_equals_live_view_on_boundary_event(self, sim):
        store, pipeline, engine = build_stream(sim, pane_seconds=PANE)
        engine.register_view("w", WindowSpec.tumbling(PANE))
        pipeline.submit(boundary_records())
        sim.run()
        pipeline.flush_all()
        engine.finalize()
        for snapshot in engine.snapshots("t", "w"):
            batch = store.scan_time("t", snapshot.start, snapshot.end)
            assert len(batch) == snapshot.records, (snapshot.start, snapshot.end)

    def test_watermark_at_pane_end_does_not_make_boundary_event_late(self, sim):
        # Closing panes through a watermark that sits exactly on a pane
        # end must still accept a subsequent event stamped at that end:
        # the pane it belongs to ([end, end+pane)) is not closed.
        _, pipeline, engine = build_stream(sim, pane_seconds=PANE)
        engine.register_view("w", WindowSpec.tumbling(PANE))
        pipeline.submit([make_record(user="u0", time=0.0)])
        sim.run()
        engine.advance_watermark(600.0)  # panes [0,300) and [300,600) close
        pipeline.submit([make_record(user="u1", time=600.0)])
        sim.run()
        pipeline.flush_all()
        engine.finalize()
        assert engine.stats.late_records == 0
        by_window = {
            (s.start, s.end): s.records for s in engine.snapshots("t", "w")
        }
        assert by_window[(600.0, 900.0)] == 1
        # ...while an event below the closed edge is counted late.
        assert by_window[(300.0, 600.0)] == 0

    def test_event_below_closed_edge_is_late_not_lost_silently(self, sim):
        _, pipeline, engine = build_stream(sim, pane_seconds=PANE)
        engine.register_view("w", WindowSpec.tumbling(PANE))
        engine.advance_watermark(600.0)
        pipeline.submit([make_record(time=599.999)])
        sim.run()
        pipeline.flush_all()
        assert engine.stats.late_records == 1

    def test_sliding_windows_count_boundary_event_once_per_window(self, sim):
        # A record at exactly t=600 with size=600/slide=300 windows must
        # appear in the two windows covering [600, 900): (300,900] ends.
        _, pipeline, engine = build_stream(sim, pane_seconds=PANE)
        engine.register_view("w", WindowSpec.sliding(600.0, PANE))
        pipeline.submit([make_record(time=600.0)])
        sim.run()
        pipeline.flush_all()
        engine.finalize()
        containing = [
            (s.start, s.end)
            for s in engine.snapshots("t", "w")
            if s.records
        ]
        assert containing == [(300.0, 900.0), (600.0, 1200.0)]
