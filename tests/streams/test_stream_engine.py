"""The stream engine: live views vs batch ground truth, wiring, alerts."""

import numpy as np
import pytest

from repro.errors import StreamError
from repro.store.quantiles import P2Quantile
from repro.streams import ContinuousQuery, StreamEngine, WindowSpec, rate_below
from tests.store.conftest import make_record, make_records
from tests.streams.conftest import build_stream, replay


class TestRegistration:
    def test_bad_pane(self):
        with pytest.raises(StreamError):
            StreamEngine(pane_seconds=0.0)

    def test_bad_lateness(self):
        with pytest.raises(StreamError):
            StreamEngine(allowed_lateness=-1.0)

    def test_bad_history(self):
        with pytest.raises(StreamError):
            StreamEngine(history=0)

    def test_duplicate_view_rejected(self, sim):
        _, _, engine = build_stream(sim)
        engine.register_view("v", WindowSpec.tumbling(60.0))
        with pytest.raises(StreamError):
            engine.register_view("v", WindowSpec.tumbling(120.0))

    def test_misaligned_view_rejected(self, sim):
        _, _, engine = build_stream(sim, pane_seconds=60.0)
        with pytest.raises(StreamError):
            engine.register_view("v", WindowSpec.tumbling(90.0))

    def test_late_registration_rejected(self, sim):
        _, pipeline, engine = build_stream(sim)
        engine.register_view("v", WindowSpec.tumbling(60.0))
        replay(sim, pipeline, make_records(200, dt=1.0))
        with pytest.raises(StreamError):
            engine.register_view("late", WindowSpec.tumbling(60.0))

    def test_registration_after_unviewed_records_rejected(self, sim):
        """Records absorbed while no view existed were never paned; a
        view registered afterwards would silently under-count, so the
        engine refuses it even before any window has closed."""
        _, pipeline, engine = build_stream(sim)
        replay(sim, pipeline, make_records(10, dt=1.0))
        assert engine.stats.records_seen == 10
        with pytest.raises(StreamError):
            engine.register_view("v", WindowSpec.tumbling(60.0))

    def test_query_needs_registered_view(self, sim):
        _, _, engine = build_stream(sim)
        with pytest.raises(StreamError):
            engine.register_query("ghost", ContinuousQuery("q", rate_below(1.0)))

    def test_unknown_view_snapshots_rejected(self, sim):
        _, _, engine = build_stream(sim)
        with pytest.raises(StreamError):
            engine.snapshots("t", "ghost")


class TestLiveViewsMatchBatchGroundTruth:
    """The tentpole invariant: windowed views maintained at flush time
    equal a batch scan of the store over the same window — without the
    engine ever scanning the store."""

    def test_tumbling_counts_users_cells_exact(self, sim):
        store, pipeline, engine = build_stream(sim, allowed_lateness=60.0)
        engine.register_view("minutely", WindowSpec.tumbling(60.0))
        records = make_records(600, dt=1.0)
        replay(sim, pipeline, records)
        engine.finalize()

        snapshots = engine.snapshots("t", "minutely")
        assert sum(s.records for s in snapshots) == 600
        assert engine.stats.late_records == 0
        for snapshot in snapshots:
            batch = store.scan("t", t0=snapshot.start, t1=snapshot.end)
            assert snapshot.records == len(batch)
            assert snapshot.n_users == len(set(batch.user_names()))
            live_cells = {
                (int(np.floor(lat / engine.cell_deg)), int(np.floor(lon / engine.cell_deg)))
                for lat, lon in zip(batch.lat, batch.lon)
                if not np.isnan(lat)
            }
            assert set(snapshot.cells) == live_cells

    def test_union_of_windows_matches_store_aggregates(self, sim):
        store, pipeline, engine = build_stream(sim, allowed_lateness=120.0)
        engine.register_view("w", WindowSpec.tumbling(300.0))
        records = [
            make_record(
                user=f"u{i % 13}", time=float(i), lat=44.8 + 0.0004 * (i % 37),
                lon=-0.6 + 0.0004 * (i % 29), value=float(i % 100),
            )
            for i in range(3000)
        ]
        replay(sim, pipeline, records, batch=100)
        engine.finalize()
        snapshots = engine.snapshots("t", "w")
        aggregate = store.aggregate("t")
        assert sum(s.records for s in snapshots) == aggregate.records
        assert set().union(*(s.cells for s in snapshots)) == set(aggregate.cells)
        users = set()
        for snapshot in snapshots:
            users.update(snapshot.user_counts)
        assert len(users) == aggregate.n_users

    def test_merged_window_percentiles_track_scanned_values(self, sim):
        store, pipeline, engine = build_stream(sim, allowed_lateness=120.0)
        engine.register_view("w", WindowSpec.tumbling(300.0))
        rng = np.random.default_rng(17)
        values = rng.uniform(0.0, 100.0, size=2000)
        records = [
            make_record(user=f"u{i % 7}", time=float(i), value=float(values[i]))
            for i in range(2000)
        ]
        replay(sim, pipeline, records, batch=100)
        engine.finalize()
        snapshots = engine.snapshots("t", "w")
        merged = P2Quantile.merge([s.value_quantiles[0.95] for s in snapshots])
        exact = float(np.percentile(values, 95.0))
        assert merged.value() == pytest.approx(exact, abs=5.0)

    def test_boundary_timestamped_record_not_dropped(self, sim):
        """A record stamped exactly on a window boundary belongs to the
        next (half-open) window; finalize() must emit that window too
        instead of silently dropping the record from every view."""
        _, pipeline, engine = build_stream(sim, allowed_lateness=0.0)
        engine.register_view("w", WindowSpec.tumbling(60.0))
        pipeline.submit(
            [make_record(time=t) for t in (10.0, 30.0, 60.0)]
        )
        sim.run()
        pipeline.flush_all()
        engine.finalize()
        snapshots = engine.snapshots("t", "w")
        assert sum(s.records for s in snapshots) == 3
        assert engine.stats.late_records == 0
        assert [(s.start, s.end, s.records) for s in snapshots] == [
            (0.0, 60.0, 2),
            (60.0, 120.0, 1),
        ]

    def test_sliding_windows_overlap(self, sim):
        _, pipeline, engine = build_stream(sim, allowed_lateness=60.0)
        engine.register_view("rolling", WindowSpec.sliding(300.0, 60.0))
        replay(sim, pipeline, make_records(600, dt=1.0))
        engine.finalize()
        snapshots = engine.snapshots("t", "rolling")
        # One window closes per minute once the first full window exists.
        assert snapshots[0].start == 0.0 and snapshots[0].end == 300.0
        assert all(s.duration == 300.0 for s in snapshots)
        assert all(
            later.start - earlier.start == 60.0
            for earlier, later in zip(snapshots, snapshots[1:])
        )
        # A steady 1 rec/s stream fills every full window with ~300.
        assert all(s.records == 300 for s in snapshots if s.end <= 600.0)


class TestWatermarkAndLateness:
    def test_records_older_than_closed_panes_counted_late(self, sim):
        _, pipeline, engine = build_stream(sim, allowed_lateness=0.0)
        engine.register_view("w", WindowSpec.tumbling(60.0))
        pipeline.submit(make_records(5, t0=300.0, dt=1.0))  # watermark -> 304
        sim.run()
        pipeline.submit([make_record(time=10.0)])  # pane [0,60) closed long ago
        sim.run()
        assert engine.stats.late_records == 1
        assert sum(s.records for s in engine.snapshots("t", "w")) == 5 - 5  # none closed yet

    def test_lateness_budget_absorbs_stragglers(self, sim):
        _, pipeline, engine = build_stream(sim, allowed_lateness=400.0)
        engine.register_view("w", WindowSpec.tumbling(60.0))
        pipeline.submit(make_records(5, t0=300.0, dt=1.0))
        sim.run()
        pipeline.submit([make_record(time=10.0)])
        sim.run()
        assert engine.stats.late_records == 0

    def test_advance_watermark_closes_empty_windows(self, sim):
        _, pipeline, engine = build_stream(sim, allowed_lateness=0.0)
        engine.register_view("w", WindowSpec.tumbling(60.0))
        fired = []
        engine.register_query(
            "w", ContinuousQuery("silence", rate_below(0.5))
        )
        pipeline.submit(make_records(30, dt=1.0))
        sim.run()
        engine.advance_watermark(300.0)  # the crowd went quiet
        snapshots = engine.snapshots("t", "w")
        assert len(snapshots) == 5
        assert [s.records for s in snapshots] == [30, 0, 0, 0, 0]
        # Silent windows fired the rate query; the busy one did not.
        assert engine.alerts.total == 4

    def test_watermark_property(self, sim):
        _, pipeline, engine = build_stream(sim, allowed_lateness=30.0)
        engine.register_view("w", WindowSpec.tumbling(60.0))
        pipeline.submit(make_records(10, t0=100.0, dt=1.0))
        sim.run()
        assert engine.watermark == pytest.approx(109.0 - 30.0)


class TestEngineWiring:
    def test_no_views_means_near_noop(self, sim):
        _, pipeline, engine = build_stream(sim)
        replay(sim, pipeline, make_records(50, dt=1.0))
        assert engine.stats.records_seen == 50
        assert engine.stats.panes_closed == 0
        assert engine.active_view_count == 0

    def test_on_window_callback_sees_every_close(self, sim):
        _, pipeline, engine = build_stream(sim, allowed_lateness=0.0)
        engine.register_view("w", WindowSpec.tumbling(60.0))
        seen = []
        engine.on_window(lambda s: seen.append((s.task, s.start, s.end, s.records)))
        replay(sim, pipeline, make_records(180, dt=1.0))
        engine.finalize()
        assert len(seen) == engine.stats.windows_emitted == 3
        assert seen[0] == ("t", 0.0, 60.0, 60)

    def test_history_bounded(self, sim):
        _, pipeline, engine = build_stream(sim, allowed_lateness=0.0, history=3)
        engine.register_view("w", WindowSpec.tumbling(60.0))
        replay(sim, pipeline, make_records(600, dt=1.0))
        engine.finalize()
        snapshots = engine.snapshots("t", "w")
        assert len(snapshots) == 3  # oldest evicted
        assert snapshots[-1].end == 600.0

    def test_last_window_rate_and_view_count(self, sim):
        _, pipeline, engine = build_stream(sim, allowed_lateness=0.0)
        engine.register_view("w", WindowSpec.tumbling(60.0))
        replay(sim, pipeline, make_records(120, dt=1.0))
        engine.finalize()
        assert engine.last_window_rate == pytest.approx(1.0)
        assert engine.active_view_count == 1
        assert engine.tasks == ["t"]

    def test_study_area_grid_cells(self, sim):
        """With a SpatialGrid the coverage view uses grid (row, col)
        cells — the same addressing as heatmaps over the study area."""
        from repro.geo.bbox import BoundingBox
        from repro.geo.grid import SpatialGrid
        from repro.geo.point import GeoPoint
        from repro.store import DatasetStore, IngestPipeline
        from repro.streams import StreamEngine

        grid = SpatialGrid(
            BoundingBox(south=44.79, west=-0.61, north=44.90, east=-0.50),
            cell_size_m=500.0,
        )
        store = DatasetStore(n_shards=1)
        pipeline = IngestPipeline(sim, store, flush_delay=0.1)
        engine = StreamEngine(
            sim=sim, pane_seconds=60.0, allowed_lateness=0.0, grid=grid
        ).attach(pipeline)
        engine.register_view("w", WindowSpec.tumbling(60.0))
        records = make_records(30, dt=1.0, step_deg=0.002)
        replay(sim, pipeline, records)
        engine.finalize()
        snapshot = engine.latest("t", "w")
        expected = {
            grid.cell_of(GeoPoint(44.80 + i * 0.002, -0.60 + i * 0.002))
            for i in range(30)
        }
        assert set(snapshot.cells) == expected
        assert all(
            0 <= row < grid.rows and 0 <= col < grid.cols
            for row, col in snapshot.cells
        )

    def test_two_tasks_tracked_independently(self, sim):
        _, pipeline, engine = build_stream(sim, allowed_lateness=0.0)
        engine.register_view("w", WindowSpec.tumbling(60.0))
        records = sorted(
            make_records(60, task="a", dt=1.0) + make_records(120, task="b", dt=0.5),
            key=lambda r: r.time,
        )
        replay(sim, pipeline, records)
        engine.finalize()
        assert sum(s.records for s in engine.snapshots("a", "w")) == 60
        assert sum(s.records for s in engine.snapshots("b", "w")) == 120
        assert engine.active_view_count == 2


class TestHiveIntegration:
    def test_hive_carries_attached_engine(self, sim):
        from repro.apisense.hive import Hive

        hive = Hive(sim)
        assert hive.streams is not None
        hive.streams.register_view("w", WindowSpec.tumbling(600.0))
        # Uploads routed through the Hive reach the engine via flushes.
        from repro.apisense.honeycomb import Honeycomb
        from repro.apisense.tasks import SensingTask

        owner = Honeycomb("lab", hive)
        task = SensingTask(
            name="t", sensors=("gps",), sampling_period=60.0,
            upload_period=600.0, end=3600.0,
        )
        owner.register_task(task)
        hive.adopt_task(task, owner)
        hive.receive_upload("d0", "u0", "t", make_records(30, dt=1.0))
        sim.run()
        hive.pipeline.flush_all()
        hive.streams.finalize()
        assert hive.streams.stats.records_seen == 30

    def test_monitoring_surfaces_stream_state(self, sim):
        from repro.apisense.hive import Hive
        from repro.apisense.monitoring import snapshot

        hive = Hive(sim)
        hive.streams.register_view("w", WindowSpec.tumbling(600.0))
        hive.streams.register_query(
            "w", ContinuousQuery("silence", rate_below(10.0))
        )
        from repro.apisense.honeycomb import Honeycomb
        from repro.apisense.tasks import SensingTask

        owner = Honeycomb("lab", hive)
        task = SensingTask(
            name="t", sensors=("gps",), sampling_period=60.0,
            upload_period=600.0, end=3600.0,
        )
        owner.register_task(task)
        hive.adopt_task(task, owner)
        hive.receive_upload("d0", "u0", "t", make_records(30, dt=1.0))
        sim.run()
        hive.pipeline.flush_all()
        hive.streams.finalize()

        report = snapshot(hive, sim.now)
        assert report.stream_views == 1
        assert report.stream_last_rate == pytest.approx(30 / 600.0)
        assert report.stream_alerts_unacked == hive.streams.alerts.unacknowledged > 0
        assert "live views" in report.to_text()
        hive.streams.alerts.acknowledge()
        assert snapshot(hive, sim.now).stream_alerts_unacked == 0
