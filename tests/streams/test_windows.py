"""Window geometry: validation, alignment, close boundaries."""

import pytest

from repro.errors import StreamError
from repro.streams import WindowSpec


class TestValidation:
    def test_bad_size(self):
        with pytest.raises(StreamError):
            WindowSpec(size=0.0, slide=1.0)

    def test_bad_slide(self):
        with pytest.raises(StreamError):
            WindowSpec(size=60.0, slide=0.0)

    def test_gapped_windows_rejected(self):
        with pytest.raises(StreamError):
            WindowSpec(size=60.0, slide=120.0)

    def test_non_multiple_rejected(self):
        with pytest.raises(StreamError):
            WindowSpec(size=100.0, slide=30.0)


class TestGeometry:
    def test_tumbling(self):
        spec = WindowSpec.tumbling(300.0)
        assert spec.is_tumbling
        assert spec.slide == spec.size == 300.0
        assert spec.panes_per_window == 1

    def test_sliding(self):
        spec = WindowSpec.sliding(3600.0, 900.0)
        assert not spec.is_tumbling
        assert spec.panes_per_window == 4

    def test_closes_at_multiples_of_slide(self):
        spec = WindowSpec.sliding(600.0, 300.0)
        assert not spec.closes_at(300.0)  # partial head window not emitted
        assert spec.closes_at(600.0)
        assert spec.closes_at(900.0)
        assert not spec.closes_at(1000.0)

    def test_window_at_boundary(self):
        spec = WindowSpec.sliding(600.0, 300.0)
        assert spec.window_at(900.0) == (300.0, 900.0)
        assert WindowSpec.tumbling(600.0).window_at(1200.0) == (600.0, 1200.0)
