"""Continuous queries and the bounded alert log."""

import pytest

from repro.errors import StreamError
from repro.streams import (
    AlertLog,
    ContinuousQuery,
    StreamAlert,
    coverage_stalled,
    percentile_above,
    rate_below,
    snapshot_from_panes,
)
from repro.streams.views import PaneStats


def window(start, end, users=(), cells=(), values=(), task="t", view="v"):
    stats = PaneStats(start, end)
    for i, user in enumerate(users):
        cell = cells[i] if i < len(cells) else None
        value = values[i] if i < len(values) else None
        stats.update(user, cell, value, None)
    return snapshot_from_panes(task, view, start, end, [stats] if users else [])


def alert(i: int) -> StreamAlert:
    return StreamAlert(
        time=float(i), task="t", view="v", query="q",
        window=(0.0, 60.0), message=f"alert {i}",
    )


class TestAlertLog:
    def test_bad_capacity(self):
        with pytest.raises(StreamError):
            AlertLog(capacity=0)

    def test_bounded_drop_oldest(self):
        log = AlertLog(capacity=3)
        for i in range(5):
            log.append(alert(i))
        assert len(log) == 3
        assert log.total == 5
        assert log.dropped == 2
        assert [a.message for a in log.alerts()] == ["alert 2", "alert 3", "alert 4"]

    def test_acknowledge(self):
        log = AlertLog(capacity=10)
        for i in range(4):
            log.append(alert(i))
        assert log.unacknowledged == 4
        assert log.acknowledge(3) == 3
        assert log.unacknowledged == 1
        assert [a.message for a in log.alerts(unacknowledged_only=True)] == ["alert 3"]
        assert log.acknowledge() == 1
        assert log.unacknowledged == 0

    def test_eviction_consumes_acknowledgement(self):
        log = AlertLog(capacity=2)
        log.append(alert(0))
        log.acknowledge()
        log.append(alert(1))
        log.append(alert(2))  # evicts the acknowledged alert 0
        assert log.unacknowledged == 2


class TestContinuousQuery:
    def test_needs_name(self):
        with pytest.raises(StreamError):
            ContinuousQuery("", rate_below(1.0))

    def test_task_restriction(self):
        query = ContinuousQuery("q", rate_below(1.0), tasks=["a"])
        assert query.applies_to("a")
        assert not query.applies_to("b")

    def test_counts_evaluations_and_fires(self):
        query = ContinuousQuery("q", rate_below(1.0))
        assert query.evaluate(window(0.0, 60.0), []) is not None
        assert query.evaluate(window(0.0, 60.0, users=["u"] * 100), []) is None
        assert query.evaluations == 2
        assert query.fires == 1

    def test_custom_callable(self):
        probe = ContinuousQuery(
            "many-users",
            lambda snapshot, history: (
                f"{snapshot.n_users} users" if snapshot.n_users > 2 else None
            ),
        )
        assert probe.evaluate(window(0.0, 60.0, users=["a", "b", "c"]), []) == "3 users"


class TestRateBelow:
    def test_threshold_validation(self):
        with pytest.raises(StreamError):
            rate_below(0.0)

    def test_fires_on_silence(self):
        assert rate_below(0.5)(window(0.0, 60.0), []) is not None

    def test_quiet_above_threshold(self):
        busy = window(0.0, 60.0, users=["u"] * 60)  # 1 rec/s
        assert rate_below(0.5)(busy, []) is None


class TestCoverageStalled:
    def test_validation(self):
        with pytest.raises(StreamError):
            coverage_stalled(0)

    def test_fires_after_stalled_run(self):
        predicate = coverage_stalled(2)
        exploring = window(0.0, 60.0, users=["u"], cells=[(0, 0)])
        stalled_1 = window(60.0, 120.0, users=["u"], cells=[(0, 0)])
        stalled_2 = window(120.0, 180.0, users=["u"], cells=[(0, 0)])
        assert predicate(stalled_1, [exploring]) is None  # history too short
        assert predicate(stalled_2, [exploring, stalled_1]) is not None

    def test_new_cell_resets(self):
        predicate = coverage_stalled(2)
        seen = window(0.0, 60.0, users=["u"], cells=[(0, 0)])
        repeat = window(60.0, 120.0, users=["u"], cells=[(0, 0)])
        fresh = window(120.0, 180.0, users=["u"], cells=[(9, 9)])
        assert predicate(fresh, [seen, repeat]) is None

    def test_idle_run_does_not_fire(self):
        # Silence is rate_below's business, not a coverage stall.
        predicate = coverage_stalled(2)
        seen = window(0.0, 60.0, users=["u"], cells=[(0, 0)])
        idle_1 = window(60.0, 120.0)
        idle_2 = window(120.0, 180.0)
        assert predicate(idle_2, [seen, idle_1]) is None

    def test_never_covered_does_not_fire(self):
        predicate = coverage_stalled(1)
        blind_1 = window(0.0, 60.0, users=["u"])  # records but no GPS
        blind_2 = window(60.0, 120.0, users=["u"])
        assert predicate(blind_2, [blind_1]) is None


class TestPercentileAbove:
    def test_metric_validation(self):
        with pytest.raises(StreamError):
            percentile_above("speed", 0.95, 1.0)

    def test_fires_on_high_values(self):
        hot = window(0.0, 60.0, users=["u"] * 10, values=[100.0] * 10)
        assert percentile_above("value", 0.95, 50.0)(hot, []) is not None
        assert percentile_above("value", 0.95, 150.0)(hot, []) is None

    def test_lag_metric_reads_lag_sketches(self):
        stats = PaneStats(0.0, 60.0)
        for _ in range(10):
            stats.update("u", None, None, 42.0)
        snapshot = snapshot_from_panes("t", "v", 0.0, 60.0, [stats])
        assert percentile_above("lag", 0.95, 10.0)(snapshot, []) is not None
        assert percentile_above("lag", 0.95, 60.0)(snapshot, []) is None
