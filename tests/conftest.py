"""Shared fixtures: small deterministic populations and geometry helpers.

Expensive fixtures are session-scoped; tests treat them as read-only.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.geo.point import GeoPoint, Record
from repro.geo.trajectory import Trajectory
from repro.mobility.city import City, CityConfig
from repro.mobility.generator import GeneratorConfig, MobilityGenerator, PopulationData

#: City-centre reference used across unit tests (Bordeaux).
CENTER = GeoPoint(44.8378, -0.5792)


@pytest.fixture(scope="session")
def small_population() -> PopulationData:
    """5 users x 3 days, 2-minute sampling: fast but structurally real."""
    config = GeneratorConfig(n_users=5, n_days=3, sampling_period=120.0)
    return MobilityGenerator(config).generate(seed=1234)


@pytest.fixture(scope="session")
def medium_population() -> PopulationData:
    """12 users x 6 days: enough structure for attack/utility tests."""
    config = GeneratorConfig(n_users=12, n_days=6, sampling_period=120.0)
    return MobilityGenerator(config).generate(seed=99)


@pytest.fixture(scope="session")
def test_city() -> City:
    return City.generate(CityConfig(), np.random.default_rng(7))


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(2024)


def make_trajectory(
    user: str = "u",
    points: list[tuple[float, float]] | None = None,
    times: list[float] | None = None,
) -> Trajectory:
    """Helper building a trajectory from (lat, lon) pairs and times."""
    if points is None:
        points = [(44.83, -0.58), (44.84, -0.57), (44.85, -0.56)]
    if times is None:
        times = [float(60 * i) for i in range(len(points))]
    records = [
        Record(point=GeoPoint(lat, lon), time=t)
        for (lat, lon), t in zip(points, times)
    ]
    return Trajectory(user=user, records=tuple(records))


@pytest.fixture()
def straight_line_trajectory() -> Trajectory:
    """A 10-point straight south-north line, one fix per minute."""
    points = [(44.80 + 0.001 * i, -0.58) for i in range(10)]
    return make_trajectory(points=points, times=[60.0 * i for i in range(10)])
