"""The streaming dashboard channel: exactly-once, catch-up, slow consumers.

The contract under test:

- every subscriber receives every matching closed window **exactly
  once** — live pushes and catch-up replay dedup against each other;
- a slow consumer loses the *oldest* queued pushes, and the loss is
  accounted per subscription (``received + dropped == emitted``);
- alerts ride the same channel; alerts the bounded log evicted before a
  subscriber ever saw them surface as an ``alert_gap`` push, not
  silence;
- in federated mode the channel pushes *merged* windows, one push per
  window end once every member closed it.
"""

import asyncio

import pytest

from repro.apisense.honeycomb import Honeycomb
from repro.errors import ServerError
from repro.server import ReproServer, ServerClient
from repro.streams import ContinuousQuery, WindowSpec, rate_below
from tests.server.conftest import (
    VIEW,
    WINDOW,
    connect,
    make_hive,
    run,
    settle,
)
from tests.store.conftest import make_record, make_records


def upload_window(hive, index: int, n: int = 30, task: str = "t", user="u0"):
    """``n`` records filling window ``index`` ([index*W, (index+1)*W))."""
    records = [
        make_record(
            user=user, task=task, time=index * WINDOW + i * (WINDOW / n)
        )
        for i in range(n)
    ]
    return hive.receive_upload(f"dev-{user}", user, task, records)


async def close_windows(server, hive, through: int) -> None:
    """Drive the sim past window ``through`` and flush the pipeline.

    With ``lateness=0`` the event-time watermark is the newest flushed
    record, so after uploading window ``i`` every window *before* it has
    closed — window ``i`` itself closes when window ``i+1``'s records
    arrive (or at ``finalize()``).  The tests account for that one-window
    lag explicitly.
    """
    await server.drive(
        max(server.clock() + 1.0, through * WINDOW + 60.0),
        slice_seconds=WINDOW / 2,
    )
    hive.pipeline.flush_all()
    await asyncio.sleep(0)


def snapshot_keys(pushes) -> list[tuple[str, float]]:
    return [
        (p["snapshot"]["task"], p["snapshot"]["end"])
        for p in pushes
        if p["kind"] == "snapshot"
    ]


class TestExactlyOnceDelivery:
    def test_every_subscriber_sees_every_window_once(self, sim):
        hive = make_hive(sim, lateness=0.0)
        server = ReproServer(hive)

        async def scenario():
            clients = [await connect(server) for _ in range(3)]
            for client in clients:
                await client.subscribe(VIEW)
            for index in range(4):
                upload_window(hive, index)
                await close_windows(server, hive, index + 1)
            hive.streams.finalize()
            await server.drain()
            expected = {
                ("t", (i + 1) * WINDOW) for i in range(4)
            }
            for client in clients:
                keys = snapshot_keys(await settle(client))
                assert len(keys) == len(set(keys)), "duplicate delivery"
                assert set(keys) == expected
                await client.close()

        run(scenario())

    def test_late_subscriber_catches_up_without_duplicates(self, sim):
        """A subscriber arriving mid-stream with ``catch_up`` replays the
        retained history once; subsequent live closes are not
        re-delivered — each window end appears exactly once."""
        hive = make_hive(sim, lateness=0.0)
        server = ReproServer(hive)

        async def scenario():
            early = await connect(server)
            await early.subscribe(VIEW)
            for index in range(3):
                upload_window(hive, index)
                await close_windows(server, hive, index + 1)

            late = await connect(server)
            reply = await late.subscribe(VIEW, catch_up=True)
            # Two windows have closed so far (the third waits for later
            # records to advance the watermark): both replayed.
            assert reply["catchup"] == 2

            for index in range(3, 5):
                upload_window(hive, index)
                await close_windows(server, hive, index + 1)
            hive.streams.finalize()
            await server.drain()

            late_keys = snapshot_keys(await settle(late))
            assert len(late_keys) == len(set(late_keys))
            assert set(late_keys) == {("t", (i + 1) * WINDOW) for i in range(5)}
            early_keys = snapshot_keys(await settle(early))
            assert set(early_keys) == set(late_keys)
            await early.close()
            await late.close()

        run(scenario())

    def test_late_subscriber_without_catch_up_gets_only_the_future(self, sim):
        hive = make_hive(sim, lateness=0.0)
        server = ReproServer(hive)

        async def scenario():
            upload_window(hive, 0)
            upload_window(hive, 1)
            await close_windows(server, hive, 2)  # closes window 0 only
            client = await connect(server)
            reply = await client.subscribe(VIEW)
            assert reply["catchup"] == 0
            upload_window(hive, 2)
            await close_windows(server, hive, 3)
            hive.streams.finalize()
            await server.drain()
            # Window 0 closed before the subscription and was not caught
            # up; only the windows closing afterwards arrive.
            assert snapshot_keys(await settle(client)) == [
                ("t", 2 * WINDOW),
                ("t", 3 * WINDOW),
            ]
            await client.close()

        run(scenario())

    def test_task_filter_and_unsubscribe(self, sim):
        hive = make_hive(sim, tasks=("a", "b"), lateness=0.0)
        server = ReproServer(hive)

        async def scenario():
            client = await connect(server)
            reply = await client.subscribe(VIEW, tasks=["a"])
            upload_window(hive, 0, task="a")
            upload_window(hive, 0, task="b", user="u1")
            await close_windows(server, hive, 1)
            hive.streams.finalize()
            await server.drain()
            keys = snapshot_keys(await settle(client))
            assert keys == [("a", WINDOW)]

            await client.unsubscribe(reply["subscription"])
            upload_window(hive, 1, task="a")
            await close_windows(server, hive, 2)
            hive.streams.finalize()
            await server.drain()
            assert snapshot_keys(await settle(client)) == []
            with pytest.raises(ServerError):
                await client.unsubscribe(reply["subscription"])
            await client.close()

        run(scenario())

    def test_unknown_view_rejected(self, sim):
        server = ReproServer(make_hive(sim))

        async def scenario():
            client = await connect(server)
            with pytest.raises(ServerError):
                await client.subscribe("nope")
            await client.close()

        run(scenario())


class TestSlowConsumer:
    def test_drop_oldest_is_counted_not_silent(self, sim):
        """A subscriber that stops reading loses the oldest pushes; the
        books still balance: received + dropped == enqueued."""
        hive = make_hive(sim, lateness=0.0)
        server = ReproServer(hive, queue_capacity=3)
        n_windows = 12

        async def scenario():
            # A raw endpoint (no ServerClient): nothing reads the inbox
            # until we say so — the transport-level slow consumer.
            endpoint = server.connect_in_process(client_capacity=1)
            await endpoint.send({"type": "connect", "headers": {}})
            assert (await endpoint.recv())["type"] == "connected"
            await endpoint.send(
                {
                    "type": "channel",
                    "id": 1,
                    "action": "subscribe",
                    "payload": {"view": VIEW},
                }
            )
            assert (await endpoint.recv())["status"] == "ok"

            for index in range(n_windows):
                upload_window(hive, index)
                await close_windows(server, hive, index + 1)
            hive.streams.finalize()
            await asyncio.sleep(0)

            session = next(iter(server._sessions.values()))
            subscription = next(iter(session.subscriptions.values()))
            assert subscription.snapshots_pushed == n_windows
            assert subscription.pushes_dropped > 0

            # Now drain the wire: exactly enqueued - dropped arrive, and
            # the *newest* windows survived (oldest were evicted).
            expected = subscription.snapshots_pushed - subscription.pushes_dropped
            received = []
            for _ in range(expected):
                received.append(await endpoint.recv())
            keys = snapshot_keys(received)
            assert len(keys) == expected
            assert len(set(keys)) == expected
            assert keys[-1] == ("t", n_windows * WINDOW)
            dropped_ends = {(i + 1) * WINDOW for i in range(n_windows)} - {
                end for _, end in keys
            }
            assert len(dropped_ends) == subscription.pushes_dropped
            # The earliest pushes escape to the transport before the
            # sender blocks; after that the bounded queue keeps only the
            # newest.  The drops are one contiguous hole in the middle,
            # strictly older than everything still queued at the end.
            ends = [end for _, end in keys]
            assert ends == sorted(ends)
            assert ends[-3:] == [
                (n_windows - 2) * WINDOW,
                (n_windows - 1) * WINDOW,
                n_windows * WINDOW,
            ]
            assert max(dropped_ends) < min(ends[-3:])
            assert sorted(dropped_ends) == [
                min(dropped_ends) + i * WINDOW
                for i in range(len(dropped_ends))
            ]
            assert server.pushes_dropped == subscription.pushes_dropped
            endpoint.close()

        run(scenario())

    def test_fast_consumer_loses_nothing(self, sim):
        hive = make_hive(sim, lateness=0.0)
        server = ReproServer(hive, queue_capacity=3)

        async def scenario():
            client = await connect(server)  # reader task drains eagerly
            await client.subscribe(VIEW)
            for index in range(12):
                upload_window(hive, index)
                await close_windows(server, hive, index + 1)
            hive.streams.finalize()
            await server.drain()
            keys = snapshot_keys(await settle(client))
            assert len(keys) == 12
            assert server.pushes_dropped == 0
            await client.close()

        run(scenario())


class TestAlertChannel:
    def test_alerts_pushed_to_subscribed_sessions(self, sim):
        hive = make_hive(sim, lateness=0.0)
        # Every window of one quiet user fires the rate-below query.
        hive.streams.register_query(
            VIEW, ContinuousQuery("quiet", rate_below(1.0))
        )
        server = ReproServer(hive)

        async def scenario():
            listening = await connect(server)
            await listening.subscribe(VIEW, alerts=True)
            deaf = await connect(server)
            await deaf.subscribe(VIEW, alerts=False)
            for index in range(3):
                upload_window(hive, index, n=10)
                await close_windows(server, hive, index + 1)
            hive.streams.finalize()
            await server.drain()
            heard = await settle(listening)
            alerts = [p for p in heard if p["kind"] == "alert"]
            assert hive.streams.alerts.total == 3  # one per closed window
            assert len(alerts) == hive.streams.alerts.total
            assert all(p["alert"]["query"] == "quiet" for p in alerts)
            assert all(p["source"] == "local" for p in alerts)
            assert not [
                p for p in await settle(deaf) if p["kind"] == "alert"
            ]
            await listening.close()
            await deaf.close()

        run(scenario())

    def test_evicted_alerts_become_a_gap_push(self, sim):
        """Alerts evicted from the bounded log before a late subscriber
        ever saw them are reported as an ``alert_gap`` — the consumer
        knows exactly how many it missed."""
        hive = make_hive(sim, lateness=0.0, alert_capacity=2)
        hive.streams.register_query(
            VIEW, ContinuousQuery("quiet", rate_below(1.0))
        )
        server = ReproServer(hive)

        async def scenario():
            # Six windows fire six alerts into a log retaining two.
            for index in range(6):
                upload_window(hive, index, n=10)
                await close_windows(server, hive, index + 1)
            log = hive.streams.alerts
            assert log.total == 5 and log.dropped == 3

            late = await connect(server)
            await late.subscribe(VIEW, alerts=True)
            upload_window(hive, 6, n=10)
            await close_windows(server, hive, 7)
            hive.streams.finalize()
            await server.drain()
            pushes = await settle(late)
            gaps = [p for p in pushes if p["kind"] == "alert_gap"]
            alerts = [p for p in pushes if p["kind"] == "alert"]
            # Everything the log still held arrived; the rest is one
            # accounted gap: alerts heard + missed == alerts fired.
            assert len(gaps) == 1
            assert len(alerts) + gaps[0]["missed"] == log.total
            assert server.stats.alert_gaps == gaps[0]["missed"]
            await late.close()

        run(scenario())


class TestFederatedChannel:
    def test_merged_windows_pushed_once_per_boundary(self, sim):
        from tests.federation.conftest import build_router, gps_task

        router = build_router(sim, 2)
        from repro.streams import StreamEngine

        for name in router.member_names:
            hive = router.hive(name)
            hive.streams = StreamEngine(sim=sim, allowed_lateness=0.0).attach(
                hive.pipeline
            )
            hive.streams.register_view(VIEW, WindowSpec.tumbling(WINDOW))
        owner = Honeycomb("lab", router.hive("hive-0"))
        router.syndicate(gps_task("t"), owner, home="hive-0")
        server = ReproServer(router=router)

        async def scenario():
            client = await connect(server)
            await client.subscribe(VIEW)
            # Find device ids homed on *different* members so both
            # engines hold every window.
            homes: dict[str, str] = {}
            for index in range(32):
                device = f"device-{index:03d}"
                homes.setdefault(router.ring.place(device), device)
                if len(homes) == 2:
                    break
            assert len(homes) == 2
            for index in range(3):
                for member, device in homes.items():
                    user = f"u-{device}"
                    records = [
                        make_record(
                            user=user, task="t",
                            time=index * WINDOW + i * (WINDOW / 10),
                        )
                        for i in range(10)
                    ]
                    reply = await client.upload(device, user, "t", records)
                    assert reply["member"] == member
                await server.drive(
                    (index + 1) * WINDOW + 60.0, slice_seconds=WINDOW / 2
                )
                for name in router.member_names:
                    router.hive(name).pipeline.flush_all()
                await asyncio.sleep(0)
            for name in router.member_names:
                router.hive(name).streams.finalize()
            await server.drain()
            keys = snapshot_keys(await settle(client))
            # One *merged* push per window end — not one per member.
            assert keys == [("t", (i + 1) * WINDOW) for i in range(3)]
            assert server.stats.merged_windows == 3
            await client.close()

        run(scenario())

    def test_merged_push_counts_sum_members(self, sim):
        from tests.federation.conftest import build_router, gps_task
        from repro.streams import StreamEngine

        router = build_router(sim, 2)
        for name in router.member_names:
            hive = router.hive(name)
            hive.streams = StreamEngine(sim=sim, allowed_lateness=0.0).attach(
                hive.pipeline
            )
            hive.streams.register_view(VIEW, WindowSpec.tumbling(WINDOW))
        owner = Honeycomb("lab", router.hive("hive-0"))
        router.syndicate(gps_task("t"), owner, home="hive-0")
        server = ReproServer(router=router)

        async def scenario():
            client = await connect(server)
            await client.subscribe(VIEW)
            homes: dict[str, str] = {}
            for index in range(32):
                device = f"device-{index:03d}"
                homes.setdefault(router.ring.place(device), device)
            assert len(homes) == 2
            per_member = 8
            for member, device in homes.items():
                records = [
                    make_record(
                        user=f"u-{device}", task="t",
                        time=i * (WINDOW / per_member),
                    )
                    for i in range(per_member)
                ]
                await client.upload(device, f"u-{device}", "t", records)
            await server.drive(WINDOW + 60.0, slice_seconds=WINDOW / 2)
            for name in router.member_names:
                router.hive(name).pipeline.flush_all()
                router.hive(name).streams.finalize()
            await server.drain()
            pushes = await settle(client)
            snapshots = [p["snapshot"] for p in pushes if p["kind"] == "snapshot"]
            assert len(snapshots) == 1
            assert snapshots[0]["records"] == 2 * per_member
            assert snapshots[0]["n_users"] == 2
            await client.close()

        run(scenario())
