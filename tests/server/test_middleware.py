"""Middleware-chain semantics: ordering, short-circuit, session state."""

import asyncio
from types import SimpleNamespace

import pytest

from repro.errors import ServerError
from repro.server import (
    Deny,
    MetricsMiddleware,
    MiddlewareChain,
    Ok,
    RateLimitMiddleware,
    Redirect,
    ReproServer,
    ServerDenied,
    ServerMiddleware,
)
from tests.server.conftest import connect, make_hive, run


class Recorder(ServerMiddleware):
    """Appends to a shared trace on the way down and on the way up."""

    def __init__(self, name: str, trace: list):
        self.name = name
        self.trace = trace

    async def request(self, *, request, session, next):
        self.trace.append(f"{self.name}:down")
        result = await next()
        self.trace.append(f"{self.name}:up")
        return result


class DenyAll(ServerMiddleware):
    async def request(self, *, request, session, next):
        return Deny("computer says no")


class RedirectAll(ServerMiddleware):
    async def request(self, *, request, session, next):
        return Redirect("other-hive")


class BadReturn(ServerMiddleware):
    async def request(self, *, request, session, next):
        return "not a chain result"


def _session() -> SimpleNamespace:
    return SimpleNamespace(state={}, now=0.0)


def run_chain(chain: MiddlewareChain, trace: list, session=None):
    async def terminal():
        trace.append("terminal")
        return Ok("payload")

    return run(
        chain.run("request", session or _session(), terminal, request=None)
    )


class TestChainSemantics:
    def test_onion_ordering(self):
        trace: list = []
        chain = MiddlewareChain([Recorder("a", trace), Recorder("b", trace)])
        result = run_chain(chain, trace)
        assert isinstance(result, Ok) and result.payload == "payload"
        assert trace == ["a:down", "b:down", "terminal", "b:up", "a:up"]

    def test_deny_short_circuits_later_middlewares_and_terminal(self):
        trace: list = []
        chain = MiddlewareChain(
            [Recorder("a", trace), DenyAll(), Recorder("b", trace)]
        )
        result = run_chain(chain, trace)
        assert isinstance(result, Deny)
        assert result.reason == "computer says no"
        # b never saw the call, the terminal never ran, a saw the result
        # on the way back up.
        assert trace == ["a:down", "a:up"]

    def test_redirect_short_circuits(self):
        trace: list = []
        chain = MiddlewareChain([RedirectAll(), Recorder("a", trace)])
        result = run_chain(chain, trace)
        assert isinstance(result, Redirect) and result.target == "other-hive"
        assert trace == []

    def test_empty_chain_runs_terminal(self):
        trace: list = []
        result = run_chain(MiddlewareChain(), trace)
        assert isinstance(result, Ok)
        assert trace == ["terminal"]

    def test_bad_return_type_raises(self):
        with pytest.raises(ServerError):
            run_chain(MiddlewareChain([BadReturn()]), [])

    def test_unknown_hook_rejected(self):
        async def terminal():
            return Ok()

        with pytest.raises(ServerError):
            run(MiddlewareChain().run("teardown", _session(), terminal))

    def test_non_middleware_rejected(self):
        with pytest.raises(ServerError):
            MiddlewareChain([object()])

    def test_metrics_observe_downstream_denials(self):
        trace: list = []
        metrics = MetricsMiddleware()
        chain = MiddlewareChain([metrics, DenyAll()])

        async def terminal():
            return Ok()

        request = SimpleNamespace(surface="query", action="aggregate")
        result = run(
            chain.run("request", _session(), terminal, request=request)
        )
        assert isinstance(result, Deny)
        assert metrics.counters.requests == 1
        assert metrics.counters.denied == 1
        assert metrics.counters.by_surface == {"query": 1}
        assert any("DENY" in line for line in metrics.log)
        del trace


class SessionCounter(ServerMiddleware):
    """Counts this session's requests in its private state dict, with a
    forced yield between read and write to invite cross-session races."""

    async def request(self, *, request, session, next):
        count = session.state.get("count", 0)
        await asyncio.sleep(0)  # interleave with other sessions
        session.state["count"] = count + 1
        session.state.setdefault("sessions_seen", set()).add(id(session))
        return await next()


class TestSessionStateIsolation:
    def test_state_is_private_per_session_under_concurrency(self, sim):
        """Two sessions issuing interleaved requests each count only
        their own calls — the state dict is per-connection, not global."""
        hive = make_hive(sim)
        counter = SessionCounter()
        server = ReproServer(hive, middlewares=[counter])

        async def scenario():
            one = await connect(server)
            two = await connect(server)
            await asyncio.gather(
                *[one.request("query", "tasks") for _ in range(7)],
                *[two.request("query", "tasks") for _ in range(3)],
            )
            counts = {
                s.state["count"] for s in server._sessions.values()
            }
            assert counts == {7, 3}
            seen = [
                s.state["sessions_seen"] for s in server._sessions.values()
            ]
            assert all(len(ids) == 1 for ids in seen)
            await one.close()
            await two.close()

        run(scenario())


class TestRateLimit:
    def test_excess_calls_denied_then_window_resets(self, sim):
        hive = make_hive(sim)
        server = ReproServer(
            hive, middlewares=[RateLimitMiddleware(3, window_seconds=60.0)]
        )

        async def scenario():
            client = await connect(server)
            for _ in range(3):
                await client.request("query", "tasks")
            with pytest.raises(ServerDenied) as denied:
                await client.request("query", "tasks")
            assert "rate limit" in str(denied.value)
            sim.run_until(61.0)  # the fixed window rolls over
            assert await client.request("query", "tasks") is not None
            await client.close()

        run(scenario())

    def test_bad_parameters_rejected(self):
        with pytest.raises(ServerError):
            RateLimitMiddleware(0)
        with pytest.raises(ServerError):
            RateLimitMiddleware(1, window_seconds=0.0)
