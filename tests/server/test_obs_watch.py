"""The ISSUE acceptance demo: SLO burn-to-recovery over ``obs watch``.

A scripted latency degradation (a slow middleware inside the timed
request section) flips a latency :class:`SLODefinition` to burning, the
``ObsAlert`` reaches every ``obs watch`` subscriber **exactly once**,
and recovery flips it back — on a single hive and on a 4-hive
federation whose merged rollup series equal the sum of the per-hive
scrapes at every aligned timestamp.
"""

from __future__ import annotations

import asyncio

import pytest

from repro import obs
from repro.errors import ServerError
from repro.federation import FederationRouter, FederationScraper, ROUTER_MEMBER
from repro.obs import BurnRateRule, MetricsScraper, SLODefinition, latency_sli
from repro.server import ReproServer, ServerMiddleware
from tests.server.conftest import connect, make_hive, run, settle
from tests.server.test_channel import upload_window


@pytest.fixture(autouse=True)
def fresh_obs():
    obs.reset(metrics=True, tracing=False)
    yield
    obs.reset(metrics=True, tracing=False)


class Degrader(ServerMiddleware):
    """A fault you can dial: sleeps inside the timed request section."""

    def __init__(self):
        self.delay = 0.0

    async def request(self, *, request, session, next):
        if self.delay:
            await asyncio.sleep(self.delay)
        return await next()


def latency_slo(threshold: float = 0.01) -> SLODefinition:
    return SLODefinition(
        name="request-latency",
        objective=0.9,
        probe=latency_sli("repro_server_request_seconds", threshold=threshold),
        rules=(BurnRateRule(window=10.0, factor=1.0),),
        description=f"90% of requests under {threshold * 1000:g}ms",
    )


def alert_states(pushes) -> list[str]:
    return [
        p["alert"]["state"] for p in pushes if p.get("kind") == "obs_alert"
    ]


def frame_times(pushes) -> list[float]:
    return [p["frame"]["t"] for p in pushes if p.get("kind") == "obs_frame"]


class TestSingleHiveSLODemo:
    def test_degradation_burns_recovery_clears_exactly_once(self, sim):
        hive = make_hive(sim, lateness=0.0)
        scraper = MetricsScraper(capacity=64)
        degrader = Degrader()
        server = ReproServer(
            hive,
            sim=sim,
            middlewares=[degrader],
            scraper=scraper,
            slos=[latency_slo()],
        )

        async def scenario():
            client = await connect(server)
            watch = await client.watch_obs()
            assert watch["slo"] is True

            async def requests(n: int):
                for _ in range(n):
                    await client.request("query", "tasks", {})

            # Baseline: the request histogram's children exist before
            # the first scrape, so later deltas are pure window deltas.
            await requests(3)
            scraper.scrape(1.0)
            # Healthy traffic: everything fast, SLO stays ok (no alert).
            await requests(8)
            scraper.scrape(5.0)
            # Degradation: every request sleeps 50ms, far past the
            # 10ms threshold -> the 10s window's good-ratio collapses.
            degrader.delay = 0.05
            await requests(8)
            scraper.scrape(12.0)
            # A scrape with no new traffic: probe sees the same damage,
            # state stays burning, and no duplicate alert is pushed.
            scraper.scrape(13.0)
            # Recovery: fast traffic refills the window.
            degrader.delay = 0.0
            await requests(8)
            scraper.scrape(20.0)

            pushes = await settle(client)
            status = await client.obs_slo()
            return pushes, status

        pushes, status = run(scenario())
        # The alert reached the watcher exactly once per transition.
        assert alert_states(pushes) == ["burning", "ok"]
        seqs = [
            p["alert"]["seq"] for p in pushes if p.get("kind") == "obs_alert"
        ]
        assert len(seqs) == len(set(seqs))
        # Every scrape produced exactly one frame push, in order.
        assert frame_times(pushes) == [1.0, 5.0, 12.0, 13.0, 20.0]
        # And the queryable state agrees: recovered, two transitions.
        (slo_status,) = status["slos"]
        assert slo_status["name"] == "request-latency"
        assert slo_status["state"] == "ok"
        assert slo_status["transitions"] == 2
        assert server.stats.obs_alerts_pushed == 2
        assert server.stats.obs_frames_pushed == 5

    def test_watch_without_scraper_is_an_error(self, sim):
        hive = make_hive(sim, lateness=0.0)
        server = ReproServer(hive, sim=sim)

        async def scenario():
            client = await connect(server)
            with pytest.raises(ServerError, match="no metrics scraper"):
                await client.watch_obs()

        run(scenario())


class TestFederationSLODemo:
    def test_four_hive_rollup_burns_and_recovers(self, sim):
        router = FederationRouter(sim)
        hives = {}
        for index in range(4):
            hive = make_hive(sim, lateness=0.0)
            router.join(f"hive-{index}", hive)
            hives[f"hive-{index}"] = hive
        fed = FederationScraper(router, cadence=1.0, capacity=64)
        degrader = Degrader()
        # The serving tier fronts hive-0; its request metrics carry the
        # server instance, which no hive claims -> the @router member.
        server = ReproServer(
            hives["hive-0"],
            sim=sim,
            middlewares=[degrader],
            scraper=fed,
            slos=[latency_slo()],
        )

        async def scenario():
            client = await connect(server)
            await client.watch_obs()

            async def requests(n: int):
                for _ in range(n):
                    await client.request("query", "tasks", {})

            await requests(3)
            # Every hive ingests different volumes between ticks, so
            # the rollup-equality check sums genuinely distinct series.
            fed.tick(1.0)
            for rank, hive in enumerate(hives.values()):
                upload_window(hive, 0, n=10 * (rank + 1), user=f"u{rank}")
            await requests(8)
            fed.tick(5.0)
            degrader.delay = 0.05
            await requests(8)
            for rank, hive in enumerate(hives.values()):
                upload_window(hive, 1, n=5 * (rank + 1), user=f"u{rank}")
            fed.tick(12.0)
            degrader.delay = 0.0
            await requests(8)
            fed.tick(20.0)

            pushes = await settle(client)
            return pushes

        pushes = run(scenario())
        assert alert_states(pushes) == ["burning", "ok"]
        assert frame_times(pushes) == [1.0, 5.0, 12.0, 20.0]

        # The acceptance equality: at every aligned timestamp, each
        # rollup series equals the sum of the members' series.
        assert ROUTER_MEMBER in fed.members
        name = "repro_pipeline_records_accepted_total"
        rollup_totals = series_totals(fed.store, name)
        member_totals: dict[float, float] = {}
        for member in fed.members:
            for t, value in series_totals(fed.member_store(member), name).items():
                member_totals[t] = member_totals.get(t, 0.0) + value
        assert rollup_totals == pytest.approx(member_totals)
        # Per-hive volumes really differ (the sum is not degenerate).
        finals = {
            member: max(
                series_totals(fed.member_store(member), name).values(),
                default=0.0,
            )
            for member in fed.members
            if member != ROUTER_MEMBER
        }
        assert len(set(finals.values())) == 4


def series_totals(store, name: str) -> dict[float, float]:
    """``t -> sum over the store's series of ``name`` at ``t``."""
    totals: dict[float, float] = {}
    for series in store.select(name):
        for t, value in zip(series.t, series.values):
            totals[float(t)] = totals.get(float(t), 0.0) + float(value)
    return totals
