"""The three serving surfaces: ingest, query, channel — plus transports.

Covers the handshake, auth denial of **each** surface, the
backpressure mapping from the ingest pipeline onto upload replies,
federated routing, the monitoring integration, and a TCP smoke test
(same protocol as in-process, real sockets).
"""

import asyncio

import pytest

from repro.apisense.honeycomb import Honeycomb
from repro.apisense.hive import Hive
from repro.apisense.monitoring import snapshot
from repro.errors import ServerError
from repro.server import (
    AuthTokenMiddleware,
    Redirect,
    ReproServer,
    ServerClient,
    ServerDenied,
    ServerMiddleware,
    ServerRedirected,
    connect_tcp,
)
from repro.simulation import Simulator
from repro.store import DatasetStore, IngestPipeline
from repro.streams import StreamEngine, WindowSpec
from tests.server.conftest import (
    VIEW,
    WINDOW,
    connect,
    make_hive,
    run,
    settle,
)
from tests.store.conftest import make_records


def drive_and_flush(server, hive, until):
    """Advance the sim past ``until`` and force every window closed."""

    async def inner():
        await server.drive(until, slice_seconds=WINDOW / 2)
        hive.pipeline.flush_all()
        hive.streams.finalize()  # close windows the lateness bound holds open

    return inner()


class TestAnchoring:
    def test_exactly_one_anchor_required(self, sim):
        hive = make_hive(sim)
        with pytest.raises(ServerError):
            ReproServer()
        with pytest.raises(ServerError):
            ReproServer(hive, engine=hive.streams)

    def test_engine_only_server_has_no_ingest_or_query(self, sim):
        engine = StreamEngine(sim=sim)
        engine.register_view("v", WindowSpec.tumbling(300.0))
        server = ReproServer(engine=engine, sim=sim)

        async def scenario():
            client = await connect(server)
            with pytest.raises(ServerError):
                await client.upload("d", "u", "t", [])
            with pytest.raises(ServerError):
                await client.aggregate("t")
            await client.close()

        run(scenario())


class TestHandshake:
    def test_connect_assigns_session_and_counts(self, sim):
        server = ReproServer(make_hive(sim))

        async def scenario():
            one = await connect(server)
            two = await connect(server)
            assert one.session_id != two.session_id
            assert server.sessions_active == 2
            await one.close()
            await two.close()
            await asyncio.sleep(0)  # the handler loops observe EOF
            await asyncio.sleep(0)
            assert server.sessions_active == 0
            assert server.stats.sessions_closed == 2

        run(scenario())

    def test_non_connect_first_message_denied(self, sim):
        server = ReproServer(make_hive(sim))

        async def scenario():
            endpoint = server.connect_in_process()
            await endpoint.send({"type": "request", "surface": "query"})
            reply = await endpoint.recv()
            assert reply["type"] == "deny"
            endpoint.close()

        run(scenario())

    def test_redirecting_connect_middleware(self, sim):
        class ToPartner(ServerMiddleware):
            async def connect(self, *, request, session, next):
                return Redirect("partner-hive:9999")

        server = ReproServer(make_hive(sim), middlewares=[ToPartner()])

        async def scenario():
            client = ServerClient(server.connect_in_process())
            with pytest.raises(ServerRedirected) as redirected:
                await client.connect()
            assert redirected.value.target == "partner-hive:9999"
            assert server.stats.redirects == 1

        run(scenario())


AUTH = {"ingest-token": "collector", "query-token": "analyst", "all-token": "admin"}
SCOPES = {
    "collector": {"ingest"},
    "analyst": {"query"},
    "admin": {"ingest", "query", "channel"},
}


def scoped_server(sim) -> tuple[ReproServer, Hive]:
    hive = make_hive(sim)
    return ReproServer(hive, middlewares=[AuthTokenMiddleware(AUTH, SCOPES)]), hive


class TestAuthGatesEverySurface:
    def test_bad_token_denied_at_handshake(self, sim):
        server, _ = scoped_server(sim)

        async def scenario():
            client = ServerClient(server.connect_in_process())
            with pytest.raises(ServerDenied):
                await client.connect({"authorization": "wrong"})
            assert server.stats.denials_connect == 1

        run(scenario())

    def test_ingestion_denied_without_scope(self, sim):
        server, _ = scoped_server(sim)

        async def scenario():
            analyst = await connect(server, {"authorization": "query-token"})
            with pytest.raises(ServerDenied) as denied:
                await analyst.upload("d0", "u0", "t", make_records(2, dt=1.0))
            assert "ingest" in denied.value.reason
            assert server.stats.denials_request == 1
            assert server.stats.requests_ingest == 0  # terminal never ran
            await analyst.close()

        run(scenario())

    def test_query_denied_without_scope(self, sim):
        server, _ = scoped_server(sim)

        async def scenario():
            collector = await connect(server, {"authorization": "ingest-token"})
            with pytest.raises(ServerDenied) as denied:
                await collector.aggregate("t")
            assert "query" in denied.value.reason
            assert server.stats.denials_request == 1
            assert server.stats.requests_query == 0
            await collector.close()

        run(scenario())

    def test_channel_subscribe_denied_without_scope(self, sim):
        server, _ = scoped_server(sim)

        async def scenario():
            collector = await connect(server, {"authorization": "ingest-token"})
            with pytest.raises(ServerDenied) as denied:
                await collector.subscribe(VIEW)
            assert "channel" in denied.value.reason
            assert server.stats.denials_channel == 1
            assert server.subscriptions_active == 0
            await collector.close()

        run(scenario())


class TestIngestSurface:
    def test_upload_reaches_store_and_query_reads_back(self, sim):
        hive = make_hive(sim)
        server = ReproServer(hive)

        async def scenario():
            client = await connect(server)
            reply = await client.upload("d0", "u0", "t", make_records(40, dt=10.0))
            assert reply["accepted"] == 40
            assert reply["status"] == "ok"
            assert reply["member"] == "local"
            await drive_and_flush(server, hive, 1000.0)
            aggregate = await client.aggregate("t")
            assert aggregate["records"] == 40
            assert aggregate["members"] == ["local"]
            secure = await client.secure_aggregate("t")
            assert secure["records"] == 40
            await client.close()

        run(scenario())

    def test_backpressure_mapped_onto_the_reply(self, sim):
        """A rejecting pipeline's shed counters come back to the
        uploader — the client sees exactly what the gateway shed."""
        store = DatasetStore(n_shards=1, segment_capacity=64)
        pipeline = IngestPipeline(
            sim, store, policy="reject", buffer_capacity=16, flush_delay=5.0
        )
        hive = Hive(sim, store=store, pipeline=pipeline)
        hive.streams.register_view(VIEW, WindowSpec.tumbling(WINDOW))
        owner = Honeycomb("tests", hive)
        from repro.apisense.tasks import SensingTask

        task = SensingTask(
            name="t", sensors=("gps", "battery"), sampling_period=60.0,
            upload_period=300.0, end=86400.0,
        )
        owner.register_task(task)
        hive.adopt_task(task, owner)
        server = ReproServer(hive)

        async def scenario():
            client = await connect(server)
            reply = await client.upload("d0", "u0", "t", make_records(50, dt=1.0))
            assert reply["status"] == "backpressure"
            assert reply["accepted"] + reply["rejected"] == 50
            assert reply["rejected"] == pipeline.stats.rejected > 0
            # The per-connection accounting rides in the session state.
            state = next(iter(server._sessions.values())).state
            assert state["ingest.accepted"] == reply["accepted"]
            assert state["ingest.rejected"] == reply["rejected"]
            await client.close()

        run(scenario())

    def test_malformed_upload_is_an_error_not_a_crash(self, sim):
        server = ReproServer(make_hive(sim))

        async def scenario():
            client = await connect(server)
            with pytest.raises(ServerError):
                await client.request("ingest", "upload", {"device_id": "d"})
            with pytest.raises(ServerError):
                await client.request("nosuch", "upload", {})
            with pytest.raises(ServerError):
                await client.request("query", "nosuch", {"task": "t"})
            # the session survives bad requests
            assert (await client.request("query", "tasks"))["tasks"] == []
            await client.close()

        run(scenario())


class TestFederatedServer:
    def test_router_mode_routes_and_aggregates_across_members(self, sim):
        from tests.federation.conftest import build_router, gps_task

        router = build_router(sim, 3)
        for name in router.member_names:
            router.hive(name).streams.register_view(
                VIEW, WindowSpec.tumbling(WINDOW)
            )
        owner = Honeycomb("lab", router.hive("hive-0"))
        router.syndicate(gps_task("t"), owner, home="hive-0")
        server = ReproServer(router=router)

        async def scenario():
            client = await connect(server)
            members = set()
            for index in range(12):
                reply = await client.upload(
                    f"device-{index:03d}", f"u{index}", "t",
                    make_records(5, user=f"u{index}", dt=30.0),
                )
                assert reply["accepted"] == 5
                members.add(reply["member"])
            assert len(members) > 1  # the ring spread the fleet
            await server.drive(1000.0, slice_seconds=100.0)
            for name in router.member_names:
                router.hive(name).pipeline.flush_all()
            aggregate = await client.aggregate("t")
            assert aggregate["records"] == 60
            assert set(aggregate["members"]) == set(router.member_names)
            assert sum(aggregate["per_member_records"].values()) == 60
            secure = await client.secure_aggregate("t")
            assert secure["records"] == 60
            await client.close()

        run(scenario())


class TestMonitoringIntegration:
    def test_health_report_carries_server_counters(self, sim):
        hive = make_hive(sim)
        server = ReproServer(hive)

        async def scenario():
            client = await connect(server)
            await client.subscribe(VIEW)
            await client.upload("d0", "u0", "t", make_records(30, dt=20.0))
            await drive_and_flush(server, hive, 1200.0)
            await server.drain()
            await settle(client)
            report = snapshot(hive, sim.now, server=server)
            assert report.server_attached
            assert report.server_sessions == 1
            assert report.server_subscriptions == 1
            assert report.server_pushes_sent >= 1
            assert report.server_pushes_dropped == 0
            text = report.to_text()
            assert "server: 1 sessions" in text
            assert "alerts evicted" in text
            await client.close()

        run(scenario())

    def test_report_without_server_says_tier_absent(self, sim):
        # Absent is not idle: without a serving tier the report must say
        # so, not render all-zero counters an operator would read as
        # "healthy but quiet".
        hive = make_hive(sim)
        report = snapshot(hive, 0.0)
        assert not report.server_attached
        assert "server: tier not attached" in report.to_text()
        assert "0 sessions" not in report.to_text()


class TestTcpTransport:
    def test_same_protocol_over_real_sockets(self, sim):
        hive = make_hive(sim)
        server = ReproServer(hive)

        async def scenario():
            try:
                listener = await server.serve_tcp(port=0)
            except OSError as error:  # pragma: no cover - sandboxed CI
                pytest.skip(f"cannot bind sockets here: {error}")
            port = listener.sockets[0].getsockname()[1]
            client = ServerClient(await connect_tcp("127.0.0.1", port))
            await client.connect()
            reply = await client.upload("d0", "u0", "t", make_records(8, dt=30.0))
            assert reply["accepted"] == 8
            await drive_and_flush(server, hive, 600.0)
            await server.drain()
            aggregate = await client.aggregate("t")
            assert aggregate["records"] == 8
            sub = await client.subscribe(VIEW, catch_up=True)
            assert sub["catchup"] >= 1
            pushes = await settle(client)
            assert any(p["kind"] == "snapshot" for p in pushes)
            await client.close()
            listener.close()
            await listener.wait_closed()

        run(scenario())
