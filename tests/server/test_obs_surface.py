"""The serving tier's observability: the ``obs`` surface, the folded
metrics middleware, and push-accounting reconciliation with the registry."""

from __future__ import annotations

import pytest

from repro import obs
from repro.apisense.monitoring import snapshot
from repro.errors import ServerError
from repro.server import (
    Deny,
    MetricsMiddleware,
    ReproServer,
    ServerDenied,
    ServerMiddleware,
)
from tests.server.conftest import VIEW, WINDOW, connect, make_hive, run, settle
from tests.server.test_server import drive_and_flush
from tests.store.conftest import make_records


@pytest.fixture(autouse=True)
def fresh_obs():
    obs.reset(metrics=True, tracing=False)
    yield
    obs.reset(metrics=True, tracing=False)


class TestObsSurface:
    def test_dump_serves_the_prometheus_exposition(self, sim):
        obs.configure(clock=lambda: sim.now)
        hive = make_hive(sim)
        server = ReproServer(hive, sim=sim)

        async def scenario():
            client = await connect(server)
            await client.upload("d0", "u0", "t", make_records(5))
            hive.pipeline.flush_all()
            await client.request("obs", "dump")  # self-count lands after render
            payload = await client.request("obs", "dump")
            assert payload["format"] == "prometheus"
            text = payload["text"]
            assert "# TYPE repro_pipeline_records_accepted_total counter" in text
            assert "repro_server_requests_total" in text
            assert 'surface="obs"' in text
            assert "repro_sim_time_seconds" in text  # sim-clock aware
            await client.close()

        run(scenario())

    def test_top_reports_hot_stages_sorted(self, sim):
        hive = make_hive(sim)
        server = ReproServer(hive, sim=sim)

        async def scenario():
            client = await connect(server)
            await client.upload("d0", "u0", "t", make_records(20, dt=30.0))
            await drive_and_flush(server, hive, 1200.0)
            payload = await client.request("obs", "top", {"limit": 5})
            stages = payload["stages"]
            assert stages
            assert len(stages) <= 5
            totals = [stage["total_seconds"] for stage in stages]
            assert totals == sorted(totals, reverse=True)
            names = [stage["stage"] for stage in stages]
            assert any("flush_seconds" in name for name in names)
            for stage in stages:
                assert stage["count"] > 0
                assert stage["p99"] >= stage["p50"] >= 0.0
            await client.close()

        run(scenario())

    def test_trace_browsing_over_the_wire(self, sim):
        obs.configure(tracing=True, sample_rate=1.0)
        hive = make_hive(sim)
        server = ReproServer(hive, sim=sim)

        async def scenario():
            client = await connect(server)
            await client.upload("d0", "u0", "t", make_records(3))
            await drive_and_flush(server, hive, 1200.0)
            listing = await client.request("obs", "trace")
            assert listing["trace_ids"] == [1]
            assert listing["spans"] >= 3
            tree = await client.request("obs", "trace", {"trace_id": 1})
            names = [span["name"] for span in tree["spans"]]
            assert "ingest.admit" in names
            assert all("records" not in span["attrs"] for span in tree["spans"])
            await client.close()

        run(scenario())

    def test_unknown_obs_action_is_an_error(self, sim):
        server = ReproServer(make_hive(sim), sim=sim)

        async def scenario():
            client = await connect(server)
            with pytest.raises(ServerError):
                await client.request("obs", "flush")
            await client.close()

        run(scenario())

    def test_requests_counted_per_surface(self, sim):
        hive = make_hive(sim)
        server = ReproServer(hive, sim=sim)

        async def scenario():
            client = await connect(server)
            await client.upload("d0", "u0", "t", make_records(2))
            hive.pipeline.flush_all()
            await client.request("query", "tasks")
            await client.request("obs", "dump")
            await client.request("obs", "top")
            registry = obs.metrics_registry()
            instance = server.obs.instance
            for surface, expected in (("ingest", 1), ("query", 1), ("obs", 2)):
                assert registry.value(
                    "repro_server_requests_total",
                    {"instance": instance, "surface": surface},
                ) == expected
            assert server.stats.requests_obs == 2
            await client.close()

        run(scenario())


class TestMetricsMiddlewareFolding:
    def test_counters_are_a_registry_view(self, sim):
        metrics = MetricsMiddleware()
        server = ReproServer(make_hive(sim), sim=sim, middlewares=[metrics])

        async def scenario():
            client = await connect(server)
            await client.request("query", "tasks")
            await client.upload("d0", "u0", "t", make_records(1))
            await client.close()

        run(scenario())
        assert metrics.counters.connects == 1
        assert metrics.counters.requests == 2
        assert metrics.counters.by_surface == {"ingest": 1, "query": 1}
        # The same numbers are first-class registry citizens now.
        registry = obs.metrics_registry()
        instance = metrics.obs.instance
        assert registry.value(
            "repro_middleware_requests_total",
            {"instance": instance, "surface": "query"},
        ) == 1
        assert 'repro_middleware_requests_total' in obs.render_prometheus()

    def test_denials_counted_on_registry_and_in_log(self, sim):
        class DenyQueries(ServerMiddleware):
            async def request(self, *, request, session, next):
                if request.surface == "query":
                    return Deny("queries are closed")
                return await next()

        metrics = MetricsMiddleware()
        server = ReproServer(
            make_hive(sim), sim=sim, middlewares=[metrics, DenyQueries()]
        )

        async def scenario():
            client = await connect(server)
            with pytest.raises(ServerDenied):
                await client.request("query", "tasks")
            await client.close()

        run(scenario())
        assert metrics.counters.denied == 1
        assert any("DENY" in line for line in metrics.log)
        registry = obs.metrics_registry()
        assert registry.total("repro_middleware_outcomes_total", kind="deny") == 1
        # The server's own per-hook denial counter agrees.
        assert registry.total("repro_server_denials_total", hook="request") == 1


class TestPushReconciliation:
    def test_enqueued_equals_sent_plus_dropped_plus_queued(self, sim):
        hive = make_hive(sim)
        server = ReproServer(hive, sim=sim)

        async def scenario():
            client = await connect(server)
            await client.subscribe(VIEW)
            await client.upload("d0", "u0", "t", make_records(30, dt=20.0))
            await drive_and_flush(server, hive, 1200.0)
            await server.drain()
            await settle(client)
            report = snapshot(hive, sim.now, server=server)
            assert report.server_attached
            assert report.server_pushes_enqueued >= 1
            assert report.server_pushes_sent == report.server_pushes_enqueued
            assert report.server_push_unaccounted == 0
            await client.close()

        run(scenario())

    def test_slow_consumer_drops_are_accounted(self, sim):
        hive = make_hive(sim)
        server = ReproServer(hive, sim=sim, queue_capacity=1)

        async def scenario():
            client = await connect(server)
            await client.subscribe(VIEW)
            # Many windows close while the client never yields to its
            # reader, so the 1-deep queue must evict.
            await client.upload("d0", "u0", "t", make_records(40, dt=60.0))
            await drive_and_flush(server, hive, 3000.0)
            await server.drain()
            await settle(client)
            report = snapshot(hive, sim.now, server=server)
            assert report.server_pushes_dropped >= 1
            assert report.server_push_unaccounted == 0
            assert (
                report.server_pushes_enqueued
                == report.server_pushes_sent
                + report.server_pushes_dropped
                + report.server_pushes_queued
            )
            await client.close()

        run(scenario())

    def test_teardown_keeps_the_identity(self, sim):
        # Close a session with pushes still queued: the abandoned
        # messages must land in ``dropped``, not vanish.
        hive = make_hive(sim)
        server = ReproServer(hive, sim=sim)

        async def scenario():
            client = await connect(server)
            await client.subscribe(VIEW)
            await client.upload("d0", "u0", "t", make_records(30, dt=20.0))
            await drive_and_flush(server, hive, 1200.0)
            await client.close()
            await server.drain()
            registry = obs.metrics_registry()
            instance = server.obs.instance
            enqueued = registry.value(
                "repro_server_pushes_total",
                {"instance": instance, "outcome": "enqueued"},
            )
            sent = registry.value(
                "repro_server_pushes_total",
                {"instance": instance, "outcome": "sent"},
            )
            dropped = registry.value(
                "repro_server_pushes_total",
                {"instance": instance, "outcome": "dropped"},
            )
            assert enqueued == sent + dropped + server.pushes_queued

        run(scenario())
