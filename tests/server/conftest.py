"""Shared helpers for the serving-tier tests.

pytest-asyncio is not a dependency: every async scenario runs through
``asyncio.run`` inside a synchronous test (the :func:`run` helper), so
the suite works on a bare pytest install.
"""

from __future__ import annotations

import asyncio
from typing import Awaitable, Callable, TypeVar

import pytest

from repro.apisense.hive import Hive
from repro.apisense.honeycomb import Honeycomb
from repro.apisense.tasks import SensingTask
from repro.server import ReproServer, ServerClient
from repro.simulation import Simulator
from repro.streams import StreamEngine, WindowSpec

T = TypeVar("T")

#: The tumbling dashboard window every fixture registers.
WINDOW = 300.0
VIEW = "m5"


def run(coro: Awaitable[T]) -> T:
    """Run one async test body on a fresh event loop."""
    return asyncio.run(coro)


def make_hive(
    sim: Simulator,
    tasks: tuple[str, ...] = ("t",),
    view: str = VIEW,
    lateness: float = 1800.0,
    alert_capacity: int = 256,
) -> Hive:
    """A Hive with a registered dashboard view and adopted tasks.

    ``lateness=0`` makes windows close as soon as the event-time
    watermark passes them — the live-push tests replay records and watch
    pushes arrive without needing ``finalize()``.
    """
    hive = Hive(
        sim,
        streams=StreamEngine(
            sim=sim, allowed_lateness=lateness, alert_capacity=alert_capacity
        ),
    )
    hive.streams.register_view(view, WindowSpec.tumbling(WINDOW))
    owner = Honeycomb("tests", hive)
    for name in tasks:
        task = SensingTask(
            name=name,
            sensors=("gps", "battery"),
            sampling_period=60.0,
            upload_period=WINDOW,
            end=86400.0,
        )
        owner.register_task(task)
        hive.adopt_task(task, owner)
    return hive


async def connect(
    server: ReproServer,
    headers: dict[str, str] | None = None,
    client_capacity: int = 0,
) -> ServerClient:
    """One connected in-process client."""
    client = ServerClient(server.connect_in_process(client_capacity))
    await client.connect(headers)
    return client


async def settle(client: ServerClient) -> list[dict]:
    """Drain every in-flight push to ``client`` (post-``server.drain``)."""
    pushes: list[dict] = []
    while True:
        await asyncio.sleep(0)
        fresh = client.drain_pushes()
        if not fresh:
            return pushes
        pushes.extend(fresh)


@pytest.fixture()
def sim() -> Simulator:
    return Simulator()
