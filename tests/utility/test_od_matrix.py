"""Unit tests for stay-based origin-destination matrices."""

import pytest

from repro.geo.grid import SpatialGrid
from repro.privacy.mechanisms import (
    GeoIndistinguishabilityMechanism,
    IdentityMechanism,
    KAnonymityCloakingMechanism,
    SpeedSmoothingMechanism,
)
from repro.privacy.pois import PoiExtractor
from repro.utility.od_matrix import od_matrix, od_similarity, trip_zones


@pytest.fixture(scope="module")
def planner_grid(medium_population) -> SpatialGrid:
    return SpatialGrid(medium_population.city.bounding_box, cell_size_m=2000.0)


class TestTripZones:
    def test_commuter_day_has_stop_zones(self, medium_population, planner_grid):
        trajectory = medium_population.dataset.get(medium_population.dataset.users[0])
        day = trajectory.split_by_day()[0]
        zones = trip_zones(day, planner_grid, PoiExtractor())
        assert 1 <= len(zones) <= 6

    def test_moving_trajectory_no_zones(self):
        from repro.geo.bbox import BoundingBox
        from tests.conftest import make_trajectory

        # 18 m/s straight line: no dwell anywhere.
        points = [(44.70 + 0.01 * i, -0.58) for i in range(19)]
        trajectory = make_trajectory(points=points, times=[60.0 * i for i in range(19)])
        grid = SpatialGrid(
            BoundingBox(south=44.69, west=-0.60, north=44.90, east=-0.56), 2000.0
        )
        assert trip_zones(trajectory, grid, PoiExtractor()) == []


class TestOdMatrix:
    def test_raw_dataset_produces_trips(self, medium_population, planner_grid):
        matrix = od_matrix(medium_population.dataset, planner_grid)
        assert sum(matrix.values()) > len(medium_population.dataset)
        for (origin, destination), count in matrix.items():
            assert origin != destination
            assert count >= 1.0

    def test_identity_similarity_one(self, medium_population, planner_grid):
        raw = od_matrix(medium_population.dataset, planner_grid)
        same = od_matrix(
            IdentityMechanism().protect(medium_population.dataset), planner_grid
        )
        assert od_similarity(raw, same) == pytest.approx(1.0)

    def test_empty_similarity_zero(self):
        assert od_similarity({}, {((0, 0), (0, 1)): 1.0}) == 0.0
        assert od_similarity({((0, 0), (0, 1)): 1.0}, {}) == 0.0


class TestMechanismOrdering:
    """The analyst-task flip that motivates per-objective selection."""

    def test_coarse_smoothing_yields_no_trips(self, medium_population, planner_grid):
        """A 250 m chord step exceeds the 200 m stay gate: the protected
        release contains no detectable stops, hence no OD trips."""
        smoothed = SpeedSmoothingMechanism(250.0).protect(
            medium_population.dataset, seed=1
        )
        assert od_matrix(smoothed, planner_grid) == {}

    def test_generalization_beats_smoothing_on_od(
        self, medium_population, planner_grid
    ):
        raw = od_matrix(medium_population.dataset, planner_grid)
        k_anon = od_matrix(
            KAnonymityCloakingMechanism(k=4, base_cell_m=250.0).protect(
                medium_population.dataset, seed=1
            ),
            planner_grid,
        )
        smoothed = od_matrix(
            SpeedSmoothingMechanism(250.0).protect(medium_population.dataset, seed=1),
            planner_grid,
        )
        assert od_similarity(raw, k_anon) >= 0.3
        assert od_similarity(raw, k_anon) > od_similarity(raw, smoothed)

    def test_mild_noise_keeps_od(self, medium_population, planner_grid):
        raw = od_matrix(medium_population.dataset, planner_grid)
        noisy = od_matrix(
            GeoIndistinguishabilityMechanism(0.01).protect(
                medium_population.dataset, seed=1
            ),
            planner_grid,
        )
        assert od_similarity(raw, noisy) >= 0.5
