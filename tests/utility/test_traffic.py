"""Unit tests for traffic matrices, flows and the seasonal predictor."""

import numpy as np
import pytest

from repro.geo.grid import SpatialGrid
from repro.privacy.mechanisms import (
    GeoIndistinguishabilityMechanism,
    IdentityMechanism,
    SpeedSmoothingMechanism,
)
from repro.utility.traffic import (
    TrafficModel,
    _spearman,
    flow_correlation,
    seasonal_naive_error,
    traffic_matrix,
    transit_counts,
)
from repro.units import DAY


@pytest.fixture(scope="module")
def grid(medium_population) -> SpatialGrid:
    return SpatialGrid(medium_population.city.bounding_box, cell_size_m=500.0)


class TestSpearman:
    def test_perfect_monotone(self):
        a = np.array([1.0, 2.0, 3.0, 4.0])
        assert _spearman(a, a * 10.0) == pytest.approx(1.0)

    def test_perfect_inverse(self):
        a = np.array([1.0, 2.0, 3.0, 4.0])
        assert _spearman(a, -a) == pytest.approx(-1.0)

    def test_ties_handled(self):
        a = np.array([1.0, 1.0, 2.0, 3.0])
        b = np.array([1.0, 1.0, 2.0, 3.0])
        assert _spearman(a, b) == pytest.approx(1.0)

    def test_matches_scipy(self):
        from scipy.stats import spearmanr

        rng = np.random.default_rng(8)
        a = rng.normal(size=50)
        b = 0.5 * a + rng.normal(size=50)
        ours = _spearman(a, b)
        scipys = spearmanr(a, b).statistic
        assert ours == pytest.approx(scipys, abs=1e-9)

    def test_constant_input(self):
        a = np.ones(5)
        assert _spearman(a, np.arange(5.0)) == 0.0

    def test_size_mismatch(self):
        with pytest.raises(ValueError):
            _spearman(np.ones(3), np.ones(4))


class TestTrafficMatrix:
    def test_shape(self, medium_population, grid):
        matrix = traffic_matrix(
            medium_population.dataset, grid, window=1800.0, time_step=600.0
        )
        assert matrix.shape[0] == grid.n_cells
        assert matrix.shape[1] == pytest.approx(6 * DAY / 1800.0, abs=2)

    def test_mass_conservation(self, medium_population, grid):
        matrix = traffic_matrix(
            medium_population.dataset, grid, window=1800.0, time_step=600.0
        )
        expected = sum(t.duration for t in medium_population.dataset) / 600.0
        assert matrix.sum() == pytest.approx(expected, rel=0.02)


class TestTransitCounts:
    def test_shape_and_nonnegative(self, medium_population, grid):
        counts = transit_counts(medium_population.dataset, grid, time_step=120.0)
        assert counts.shape == (grid.n_cells,)
        assert (counts >= 0).all()

    def test_moving_users_enter_many_cells(self, medium_population, grid):
        counts = transit_counts(medium_population.dataset, grid, time_step=120.0)
        assert counts.sum() > len(medium_population.dataset) * 10


class TestFlowCorrelation:
    def test_identity_correlation_one(self, medium_population, grid):
        raw = transit_counts(medium_population.dataset, grid, 120.0).reshape(-1, 1)
        same = transit_counts(
            IdentityMechanism().protect(medium_population.dataset), grid, 120.0
        ).reshape(-1, 1)
        assert flow_correlation(raw, same) == pytest.approx(1.0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            flow_correlation(np.ones((2, 2)), np.ones((3, 2)))

    def test_smoothing_beats_heavy_noise(self, medium_population, grid):
        raw = transit_counts(medium_population.dataset, grid, 120.0).reshape(-1, 1)
        smoothed = transit_counts(
            SpeedSmoothingMechanism(100.0).protect(medium_population.dataset, seed=1),
            grid,
            120.0,
        ).reshape(-1, 1)
        noisy = transit_counts(
            GeoIndistinguishabilityMechanism(0.001).protect(
                medium_population.dataset, seed=1
            ),
            grid,
            120.0,
        ).reshape(-1, 1)
        assert flow_correlation(raw, smoothed) > flow_correlation(raw, noisy)


class TestTrafficModel:
    def test_fit_shape(self, medium_population, grid):
        matrix = traffic_matrix(medium_population.dataset, grid, 1800.0, 600.0)
        model = TrafficModel.fit(matrix, window=1800.0)
        assert model.windows_per_day == 48
        assert model.profile.shape == (grid.n_cells, 48)

    def test_periodic_signal_learned_exactly(self):
        # Two identical days: the seasonal profile equals one day.
        day = np.arange(48.0).reshape(1, -1)
        matrix = np.concatenate([day, day], axis=1)
        model = TrafficModel.fit(matrix, window=1800.0)
        assert np.allclose(model.predict_day(), day)

    def test_seasonal_naive_error_zero_for_identity(self, medium_population, grid):
        matrix = traffic_matrix(medium_population.dataset, grid, 1800.0, 600.0)
        assert seasonal_naive_error(matrix, matrix, window=1800.0) == pytest.approx(0.0)

    def test_seasonal_naive_error_positive_for_noise(self, medium_population, grid):
        matrix = traffic_matrix(medium_population.dataset, grid, 1800.0, 600.0)
        noisy_dataset = GeoIndistinguishabilityMechanism(0.002).protect(
            medium_population.dataset, seed=1
        )
        noisy = traffic_matrix(noisy_dataset, grid, 1800.0, 600.0)
        width = min(matrix.shape[1], noisy.shape[1])
        error = seasonal_naive_error(noisy[:, :width], matrix[:, :width], window=1800.0)
        assert error > 0.1
