"""Unit tests for the consolidated utility report."""

import pytest

from repro.privacy.mechanisms import (
    GeoIndistinguishabilityMechanism,
    IdentityMechanism,
    SpeedSmoothingMechanism,
)
from repro.utility.release_report import evaluate_release


class TestIdentityBaseline:
    def test_identity_scores_perfect(self, medium_population):
        protected = IdentityMechanism().protect(medium_population.dataset)
        report = evaluate_release(medium_population.dataset, protected)
        assert report.hotspot_f1 == 1.0
        assert report.footfall_cosine == pytest.approx(1.0)
        assert report.transit_flow_correlation == pytest.approx(1.0)
        assert report.od_similarity == pytest.approx(1.0)
        assert report.spatial_distortion_m < 1.0
        assert report.suppression == 0.0
        assert report.record_rate_ratio == pytest.approx(1.0)

    def test_to_text_complete(self, medium_population):
        protected = IdentityMechanism().protect(medium_population.dataset)
        report = evaluate_release(medium_population.dataset, protected)
        text = report.to_text()
        for label in ("crowded places", "OD trip matrix", "spatial distortion",
                      "record rate"):
            assert label in text


class TestMechanismProfiles:
    def test_smoothing_profile(self, medium_population):
        """Smoothing: shape metrics high, OD zero (coarse step), rate low."""
        protected = SpeedSmoothingMechanism(250.0).protect(
            medium_population.dataset, seed=1
        )
        report = evaluate_release(medium_population.dataset, protected)
        assert report.hotspot_f1 >= 0.4
        assert report.od_similarity == 0.0
        assert report.record_rate_ratio < 0.2

    def test_noise_profile(self, medium_population):
        """Mild noise: everything roughly intact, distortion = 2/eps."""
        protected = GeoIndistinguishabilityMechanism(0.05).protect(
            medium_population.dataset, seed=1
        )
        report = evaluate_release(medium_population.dataset, protected)
        assert report.spatial_distortion_m == pytest.approx(40.0, rel=0.2)
        assert report.record_rate_ratio == pytest.approx(1.0)
        assert report.od_similarity >= 0.5
