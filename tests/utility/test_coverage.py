"""Unit tests for coverage measures."""

import pytest

from repro.geo.grid import SpatialGrid
from repro.mobility.dataset import MobilityDataset
from repro.privacy.mechanisms import TemporalDownsamplingMechanism
from repro.utility.coverage import area_coverage, record_rate, temporal_coverage


class TestAreaCoverage:
    def test_bounds(self, medium_population):
        grid = SpatialGrid(medium_population.city.bounding_box, cell_size_m=500.0)
        coverage = area_coverage(medium_population.dataset, grid)
        assert 0.0 < coverage < 1.0

    def test_empty_dataset(self, medium_population):
        grid = SpatialGrid(medium_population.city.bounding_box, cell_size_m=500.0)
        assert area_coverage(MobilityDataset([]), grid) == 0.0

    def test_coarser_grid_higher_coverage(self, medium_population):
        fine = SpatialGrid(medium_population.city.bounding_box, cell_size_m=200.0)
        coarse = SpatialGrid(medium_population.city.bounding_box, cell_size_m=1000.0)
        assert area_coverage(medium_population.dataset, coarse) > area_coverage(
            medium_population.dataset, fine
        )


class TestTemporalCoverage:
    def test_continuous_sampling_full(self, medium_population):
        assert temporal_coverage(medium_population.dataset, window=3600.0) == pytest.approx(
            1.0, abs=0.02
        )

    def test_empty(self):
        assert temporal_coverage(MobilityDataset([])) == 0.0


class TestRecordRate:
    def test_matches_sampling_period(self, medium_population):
        # 120 s sampling with 3% dropout -> ~29 records per user-hour.
        rate = record_rate(medium_population.dataset)
        assert rate == pytest.approx(3600.0 / 120.0 * 0.97, rel=0.05)

    def test_downsampling_reduces_rate(self, medium_population):
        thinned = TemporalDownsamplingMechanism(window=600.0).protect(
            medium_population.dataset, seed=1
        )
        assert record_rate(thinned) < record_rate(medium_population.dataset) / 3

    def test_empty(self):
        assert record_rate(MobilityDataset([])) == 0.0
