"""Unit tests for presence/footfall density and hotspot agreement."""

import numpy as np
import pytest

from repro.geo.grid import SpatialGrid
from repro.privacy.mechanisms import (
    GeoIndistinguishabilityMechanism,
    IdentityMechanism,
    SpeedSmoothingMechanism,
)
from repro.utility.heatmap import (
    DensityGrid,
    density_similarity,
    footfall_density,
    hotspot_f1,
    presence_density,
)


@pytest.fixture(scope="module")
def grid(medium_population) -> SpatialGrid:
    return SpatialGrid(medium_population.city.bounding_box, cell_size_m=500.0)


class TestDensityGrid:
    def test_top_cells_ordering(self):
        counts = np.zeros((3, 3))
        counts[1, 1] = 10
        counts[0, 2] = 5
        counts[2, 0] = 1
        grid = SpatialGrid.__new__(SpatialGrid)  # structural stand-in unused
        density = DensityGrid(grid=grid, counts=counts)
        assert density.top_cells(2) == {(1, 1), (0, 2)}

    def test_top_cells_excludes_zeros(self):
        counts = np.zeros((2, 2))
        counts[0, 0] = 3
        density = DensityGrid(grid=None, counts=counts)  # type: ignore[arg-type]
        assert density.top_cells(4) == {(0, 0)}

    def test_top_cells_zero_k(self):
        density = DensityGrid(grid=None, counts=np.ones((2, 2)))  # type: ignore[arg-type]
        assert density.top_cells(0) == set()

    def test_normalized_sums_to_one(self):
        density = DensityGrid(grid=None, counts=np.array([[1.0, 3.0]]))  # type: ignore[arg-type]
        assert density.normalized().sum() == pytest.approx(1.0)

    def test_normalized_empty(self):
        density = DensityGrid(grid=None, counts=np.zeros((2, 2)))  # type: ignore[arg-type]
        assert density.normalized().sum() == 0.0


class TestPresenceDensity:
    def test_total_mass_scales_with_time(self, medium_population, grid):
        density = presence_density(medium_population.dataset, grid, time_step=600.0)
        total_user_seconds = sum(
            t.duration for t in medium_population.dataset
        )
        assert density.counts.sum() == pytest.approx(
            total_user_seconds / 600.0, rel=0.02
        )

    def test_hotspots_at_anchor_places(self, medium_population, grid):
        density = presence_density(medium_population.dataset, grid, time_step=600.0)
        hotspots = density.top_cells(20)
        homes = {grid.cell_of(p.home) for p in medium_population.profiles.values()}
        # Most users' home cells are among the presence hotspots.
        assert len(hotspots & homes) >= min(len(homes), 5)


class TestFootfall:
    def test_counts_distinct_users(self, medium_population, grid):
        density = footfall_density(medium_population.dataset, grid, time_step=120.0)
        assert density.counts.max() <= len(medium_population.dataset)

    def test_identity_perfect_f1(self, medium_population, grid):
        raw = footfall_density(medium_population.dataset, grid, time_step=120.0)
        same = footfall_density(
            IdentityMechanism().protect(medium_population.dataset), grid, time_step=120.0
        )
        assert hotspot_f1(raw, same, k=15) == 1.0

    def test_smoothing_retains_footfall(self, medium_population, grid):
        raw = footfall_density(medium_population.dataset, grid, time_step=120.0)
        protected = SpeedSmoothingMechanism(100.0).protect(
            medium_population.dataset, seed=1
        )
        smoothed = footfall_density(protected, grid, time_step=120.0)
        assert hotspot_f1(raw, smoothed, k=15) >= 0.5

    def test_heavy_noise_destroys_footfall(self, medium_population, grid):
        raw = footfall_density(medium_population.dataset, grid, time_step=120.0)
        noisy = GeoIndistinguishabilityMechanism(epsilon=0.001).protect(
            medium_population.dataset, seed=1
        )
        noisy_density = footfall_density(noisy, grid, time_step=120.0)
        smoothed = footfall_density(
            SpeedSmoothingMechanism(100.0).protect(medium_population.dataset, seed=1),
            grid,
            time_step=120.0,
        )
        assert hotspot_f1(raw, noisy_density, k=15) < hotspot_f1(raw, smoothed, k=15)


class TestHotspotF1:
    def _density(self, hot_cells, shape=(4, 4)):
        counts = np.zeros(shape)
        for cell in hot_cells:
            counts[cell] = 10.0
        return DensityGrid(grid=None, counts=counts)  # type: ignore[arg-type]

    def test_disjoint_is_zero(self):
        a = self._density([(0, 0), (1, 1)])
        b = self._density([(2, 2), (3, 3)])
        assert hotspot_f1(a, b, k=2) == 0.0

    def test_identical_is_one(self):
        a = self._density([(0, 0), (1, 1)])
        assert hotspot_f1(a, a, k=2) == 1.0

    def test_both_empty_is_one(self):
        empty = self._density([])
        assert hotspot_f1(empty, empty, k=3) == 1.0

    def test_one_empty_is_zero(self):
        a = self._density([(0, 0)])
        empty = self._density([])
        assert hotspot_f1(a, empty, k=1) == 0.0


class TestDensitySimilarity:
    def test_self_similarity(self, medium_population, grid):
        density = footfall_density(medium_population.dataset, grid, time_step=300.0)
        assert density_similarity(density, density) == pytest.approx(1.0)

    def test_empty_similarity(self):
        empty = DensityGrid(grid=None, counts=np.zeros((2, 2)))  # type: ignore[arg-type]
        assert density_similarity(empty, empty) == 0.0
