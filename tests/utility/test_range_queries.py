"""Unit tests for range-query utility."""

import pytest

from repro.mobility.dataset import MobilityDataset
from repro.privacy.mechanisms import (
    GeoIndistinguishabilityMechanism,
    IdentityMechanism,
    SpeedSmoothingMechanism,
)
from repro.utility.range_queries import (
    RangeQuery,
    range_query_error,
    sample_query_workload,
)
from tests.conftest import make_trajectory


class TestRangeQuery:
    def test_counts_hits(self):
        trajectory = make_trajectory(
            points=[(44.80, -0.58), (44.80, -0.58), (44.90, -0.40)],
            times=[0.0, 60.0, 120.0],
        )
        dataset = MobilityDataset([trajectory])
        query = RangeQuery(
            center=trajectory.points[0], radius_m=100.0, t_start=0.0, t_end=100.0
        )
        assert query.count(dataset) == 2

    def test_time_window_enforced(self):
        trajectory = make_trajectory(times=[0.0, 60.0, 120.0])
        dataset = MobilityDataset([trajectory])
        query = RangeQuery(
            center=trajectory.points[0], radius_m=1e6, t_start=200.0, t_end=300.0
        )
        assert query.count(dataset) == 0


class TestWorkload:
    def test_sampling_deterministic(self, medium_population):
        a = sample_query_workload(medium_population.dataset, n_queries=10, seed=4)
        b = sample_query_workload(medium_population.dataset, n_queries=10, seed=4)
        assert a == b

    def test_queries_within_extent(self, medium_population):
        bbox = medium_population.dataset.bounding_box.expanded(0.05)
        for query in sample_query_workload(medium_population.dataset, n_queries=20):
            assert bbox.contains(query.center)
            assert query.t_end > query.t_start


class TestError:
    def test_identity_error_near_zero(self, medium_population):
        queries = sample_query_workload(medium_population.dataset, n_queries=25, seed=1)
        protected = IdentityMechanism().protect(medium_population.dataset)
        assert range_query_error(
            medium_population.dataset, protected, queries
        ) == pytest.approx(0.0, abs=1e-9)

    def test_noise_increases_error(self, medium_population):
        queries = sample_query_workload(medium_population.dataset, n_queries=25, seed=1)
        mild = GeoIndistinguishabilityMechanism(0.05).protect(
            medium_population.dataset, seed=2
        )
        harsh = GeoIndistinguishabilityMechanism(0.001).protect(
            medium_population.dataset, seed=2
        )
        mild_error = range_query_error(medium_population.dataset, mild, queries)
        harsh_error = range_query_error(medium_population.dataset, harsh, queries)
        assert mild_error < harsh_error

    def test_empty_protected_infinite(self, medium_population):
        queries = sample_query_workload(medium_population.dataset, n_queries=5, seed=1)
        assert range_query_error(
            medium_population.dataset, MobilityDataset([]), queries
        ) == float("inf")

    def test_smoothing_costs_spatiotemporal_counts(self, medium_population):
        """The honest trade-off: smoothing redistributes dwell *time* along
        the path by design, so spatio-temporal record-count queries —
        which weight dwell mass — degrade markedly.  This is the flip
        side of hiding stops; shape analytics (footfall, flows) are the
        metrics smoothing preserves, not dwell-weighted counts."""
        queries = sample_query_workload(
            medium_population.dataset,
            n_queries=25,
            radius_range_m=(1500.0, 3000.0),
            seed=1,
        )
        mild = GeoIndistinguishabilityMechanism(0.05).protect(
            medium_population.dataset, seed=2
        )
        smoothed = SpeedSmoothingMechanism(100.0).protect(
            medium_population.dataset, seed=2
        )
        mild_error = range_query_error(medium_population.dataset, mild, queries)
        smoothed_error = range_query_error(medium_population.dataset, smoothed, queries)
        assert smoothed_error > mild_error
