"""Unit tests for columnar segments: build, seal, prune, merge."""

import numpy as np
import pytest

from repro.errors import StoreError
from repro.store.segment import Segment, SegmentBuilder, merge_segments


def fill(builder: SegmentBuilder, times, lats=None, lons=None) -> None:
    n = len(times)
    t = np.asarray(times, dtype=np.float64)
    lat = np.asarray(lats if lats is not None else [44.8] * n, dtype=np.float64)
    lon = np.asarray(lons if lons is not None else [-0.58] * n, dtype=np.float64)
    value = np.zeros(n)
    uid = np.zeros(n, dtype=np.int64)
    builder.append(t, lat, lon, value, uid, 0, n)


class TestBuilder:
    def test_capacity_validation(self):
        with pytest.raises(StoreError):
            SegmentBuilder(0)

    def test_append_tracks_metadata(self):
        builder = SegmentBuilder(16)
        fill(builder, [5.0, 1.0, 9.0], lats=[44.1, 44.9, 44.5], lons=[-0.7, -0.1, -0.4])
        assert builder.size == 3
        view = builder.as_segment()
        assert view.t_min == 1.0 and view.t_max == 9.0
        assert view.lat_min == 44.1 and view.lat_max == 44.9
        assert view.lon_min == -0.7 and view.lon_max == -0.1
        assert not view.sealed

    def test_overflow_rejected(self):
        builder = SegmentBuilder(2)
        with pytest.raises(StoreError):
            fill(builder, [1.0, 2.0, 3.0])

    def test_nan_gps_ignored_in_extent(self):
        builder = SegmentBuilder(8)
        nan = float("nan")
        fill(builder, [1.0, 2.0], lats=[nan, 44.5], lons=[nan, -0.5])
        view = builder.as_segment()
        assert view.lat_min == 44.5 and view.lon_max == -0.5

    def test_all_nan_extent_never_matches_bbox(self):
        builder = SegmentBuilder(4)
        nan = float("nan")
        fill(builder, [1.0], lats=[nan], lons=[nan])
        view = builder.as_segment()
        assert not view.overlaps_bbox(-90.0, -180.0, 90.0, 180.0)

    def test_seal_is_immutable_and_right_sized(self):
        builder = SegmentBuilder(100)
        fill(builder, [1.0, 2.0, 3.0])
        segment = builder.seal()
        assert segment.sealed
        assert len(segment) == 3
        assert len(segment.time) == 3
        with pytest.raises(ValueError):
            segment.time[0] = 99.0


class TestPruning:
    @pytest.fixture()
    def segment(self) -> Segment:
        builder = SegmentBuilder(8)
        fill(builder, [10.0, 20.0, 30.0], lats=[44.1, 44.2, 44.3], lons=[-0.3, -0.2, -0.1])
        return builder.seal()

    @pytest.mark.parametrize(
        "t0,t1,expected",
        [
            (None, None, True),
            (0.0, 10.0, False),  # t1 exclusive
            (0.0, 10.1, True),
            (30.0, None, True),
            (30.1, None, False),
            (None, 5.0, False),
        ],
    )
    def test_time_overlap(self, segment, t0, t1, expected):
        assert segment.overlaps_time(t0, t1) is expected

    @pytest.mark.parametrize(
        "box,expected",
        [
            ((44.0, -0.5, 44.5, 0.0), True),
            ((44.25, -0.25, 44.5, 0.0), True),
            ((45.0, -0.5, 45.5, 0.0), False),  # north of extent
            ((44.0, 0.5, 44.5, 1.0), False),  # east of extent
        ],
    )
    def test_bbox_overlap(self, segment, box, expected):
        assert segment.overlaps_bbox(*box) is expected


class TestMerge:
    def test_merge_sorts_by_time(self):
        a = SegmentBuilder(4)
        fill(a, [30.0, 10.0])
        b = SegmentBuilder(4)
        fill(b, [20.0, 5.0])
        merged = merge_segments([a.seal(), b.seal()])
        assert merged.time.tolist() == [5.0, 10.0, 20.0, 30.0]
        assert merged.t_min == 5.0 and merged.t_max == 30.0
        assert len(merged) == 4

    def test_merge_keeps_rows_aligned(self):
        a = SegmentBuilder(4)
        fill(a, [2.0, 1.0], lats=[44.2, 44.1], lons=[-0.2, -0.1])
        merged = merge_segments([a.seal()])
        assert merged.lat.tolist() == [44.1, 44.2]
        assert merged.lon.tolist() == [-0.1, -0.2]

    def test_merge_empty_list_rejected(self):
        with pytest.raises(StoreError):
            merge_segments([])
