"""Aggregate-view correctness: streaming views vs brute-force recounts."""

import math

import numpy as np
import pytest

from repro.errors import StoreError
from repro.store import DatasetStore, StoreAggregates
from tests.store.conftest import make_record, make_records


def brute_force(store: DatasetStore, task: str, cell_deg: float):
    """Recount everything from a raw store scan."""
    batch = store.scan(task)
    fix = ~np.isnan(batch.lat)
    cells = {
        (math.floor(lat / cell_deg), math.floor(lon / cell_deg))
        for lat, lon in zip(batch.lat[fix].tolist(), batch.lon[fix].tolist())
    }
    return {
        "records": len(batch),
        "users": len(set(batch.user_names())),
        "gps_records": int(np.count_nonzero(fix)),
        "cells": cells,
        "first": float(batch.time.min()),
        "last": float(batch.time.max()),
    }


class TestAggregatesMatchBruteForce:
    @pytest.fixture()
    def store(self) -> DatasetStore:
        store = DatasetStore(n_shards=4, segment_capacity=32, coverage_cell_deg=0.005)
        for u in range(7):
            store.append(
                make_records(
                    60,
                    user=f"user-{u}",
                    t0=37.0 * u,
                    lat0=44.78 + 0.003 * u,
                    lon0=-0.63 + 0.004 * u,
                    step_deg=0.0007,
                ),
                ingest_time=10_000.0,
            )
        # A few GPS-less records exercise the NaN path.
        store.append(
            [make_record(user="user-0", time=50_000.0 + i, lat=None, lon=None) for i in range(5)],
            ingest_time=60_000.0,
        )
        return store

    def test_counts_users_coverage_and_span(self, store):
        aggregate = store.aggregate("t")
        truth = brute_force(store, "t", cell_deg=0.005)
        assert aggregate.records == truth["records"]
        assert aggregate.n_users == truth["users"]
        assert aggregate.gps_records == truth["gps_records"]
        assert aggregate.cells == frozenset(truth["cells"])
        assert aggregate.coverage_cells == len(truth["cells"])
        assert aggregate.first_time == truth["first"]
        assert aggregate.last_time == truth["last"]

    def test_aggregates_survive_compaction_unchanged(self, store):
        before = store.aggregate("t")
        snapshot = (before.records, before.n_users, before.cells)
        store.compact()
        after = store.aggregate("t")
        assert (after.records, after.n_users, after.cells) == snapshot
        # The store itself still agrees with the view.
        truth = brute_force(store, "t", cell_deg=0.005)
        assert after.records == truth["records"]


class TestLagStatistics:
    def test_lag_mean_and_max_exact(self):
        store = DatasetStore(n_shards=1)
        times = [0.0, 10.0, 40.0, 90.0]
        store.append(
            [make_record(time=t) for t in times], ingest_time=100.0
        )
        aggregate = store.aggregate("t")
        lags = [100.0 - t for t in times]
        assert aggregate.lag_max == max(lags)
        assert aggregate.lag_mean == pytest.approx(sum(lags) / len(lags))
        assert aggregate.lag_count == len(lags)

    def test_lag_percentiles_track_brute_force(self):
        rng = np.random.default_rng(3)
        store = DatasetStore(n_shards=2)
        all_lags = []
        for flush in range(40):
            ingest = 1000.0 * (flush + 1)
            ages = rng.uniform(0.0, 600.0, size=50)
            all_lags.extend(ages.tolist())
            store.append(
                [
                    make_record(user=f"u{i % 4}", time=ingest - age)
                    for i, age in enumerate(ages)
                ],
                ingest_time=ingest,
            )
        aggregate = store.aggregate("t")
        assert aggregate.lag_p50 == pytest.approx(
            float(np.percentile(all_lags, 50)), abs=20.0
        )
        assert aggregate.lag_p95 == pytest.approx(
            float(np.percentile(all_lags, 95)), abs=20.0
        )
        assert aggregate.lag_p99 <= 600.0

    def test_bulk_load_skips_lag(self):
        store = DatasetStore(n_shards=1)
        store.append(make_records(10))  # no ingest_time
        aggregate = store.aggregate("t")
        assert aggregate.lag_count == 0
        assert aggregate.lag_mean == 0.0
        assert aggregate.lag_p95 == 0.0

    def test_freshness(self):
        store = DatasetStore(n_shards=1)
        store.append([make_record(time=500.0)], ingest_time=501.0)
        assert store.aggregate("t").freshness(800.0) == 300.0
        empty = StoreAggregates()
        with pytest.raises(StoreError):
            empty.task("missing")


class TestPerTaskIsolation:
    def test_tasks_tracked_independently(self):
        store = DatasetStore(n_shards=2)
        store.append(make_records(10, task="a", user="u1"), ingest_time=700.0)
        store.append(make_records(25, task="b", user="u2"), ingest_time=700.0)
        assert store.aggregate("a").records == 10
        assert store.aggregate("b").records == 25
        assert sorted(store.aggregates.tasks) == ["a", "b"]
        assert store.aggregates.get("c") is None
