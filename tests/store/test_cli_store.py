"""End-to-end tests of ``python -m repro store ...``."""

import csv

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def raw_csv(tmp_path_factory):
    path = tmp_path_factory.mktemp("store-cli") / "raw.csv"
    code = main(
        [
            "generate",
            "--users", "5",
            "--days", "2",
            "--period", "300",
            "--seed", "7",
            "--out", str(path),
        ]
    )
    assert code == 0
    return path


class TestStoreStats:
    def test_reports_store_pipeline_and_aggregates(self, raw_csv, capsys):
        code = main(
            [
                "store", "stats",
                "--input", str(raw_csv),
                "--shards", "4",
                "--segment-capacity", "512",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "across 4 shards" in out
        assert "pipeline:" in out and "flushes" in out
        assert "task ingested:" in out and "coverage cells" in out


class TestStoreQuery:
    def test_time_range_query_writes_csv(self, raw_csv, tmp_path, capsys):
        out_path = tmp_path / "slice.csv"
        code = main(
            [
                "store", "query",
                "--input", str(raw_csv),
                "--t0", "0",
                "--t1", "43200",
                "--out", str(out_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "query matched" in out
        with open(out_path, newline="") as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["user", "time", "lat", "lon", "value"]
        assert len(rows) > 1
        assert all(0.0 <= float(row[1]) < 43200.0 for row in rows[1:])

    def test_user_and_bbox_filters(self, raw_csv, capsys):
        code = main(
            [
                "store", "query",
                "--input", str(raw_csv),
                "--user", "user-0000",
                "--bbox", "-90", "-180", "90", "180",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "from 1 users" in out


class TestStoreCompact:
    def test_compaction_reported(self, raw_csv, capsys):
        code = main(
            [
                "store", "compact",
                "--input", str(raw_csv),
                "--segment-capacity", "128",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "compacted" in out and "segments" in out
