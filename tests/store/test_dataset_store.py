"""Unit tests for the columnar dataset store: routing, scans, compaction."""

import numpy as np
import pytest

from repro.errors import StoreError
from repro.geo.bbox import BoundingBox
from repro.store import DatasetStore, shard_of
from tests.store.conftest import make_record, make_records


class TestShardRouting:
    def test_deterministic_and_stable(self):
        # Fixed expectations pin the routing function across refactors:
        # segments on disk (or in a partner process) must stay readable.
        assert shard_of("t", "u0", 4) == shard_of("t", "u0", 4)
        store_a = DatasetStore(n_shards=8)
        store_b = DatasetStore(n_shards=8)
        for i in range(50):
            assert store_a.shard_of("task", f"u{i}") == store_b.shard_of("task", f"u{i}")

    def test_spreads_users_across_shards(self):
        store = DatasetStore(n_shards=4)
        shards = {store.shard_of("task", f"user-{i:04d}") for i in range(200)}
        assert shards == {0, 1, 2, 3}

    def test_task_user_pair_lives_in_one_shard(self):
        store = DatasetStore(n_shards=4, segment_capacity=8)
        store.append(make_records(30, user="alice"))
        stats = store.stats()
        assert sum(1 for s in stats.per_shard if s.records) == 1

    def test_same_user_different_tasks_may_differ(self):
        # The routing key is (task, user), not user alone.
        assert shard_of("task-a", "u", 1024) != shard_of("task-b", "u", 1024)

    def test_invalid_shard_count(self):
        with pytest.raises(StoreError):
            DatasetStore(n_shards=0)


class TestAppend:
    def test_counts(self):
        store = DatasetStore(n_shards=2)
        assert store.append(make_records(10)) == 10
        assert store.append([]) == 0
        assert store.n_records == 10
        assert store.tasks == ["t"]
        assert store.users == ["u0"]

    def test_segment_rollover(self):
        store = DatasetStore(n_shards=1, segment_capacity=8)
        store.append(make_records(20))
        stats = store.stats()
        assert stats.sealed_segments == 2
        assert stats.segments == 3  # two sealed + the open remainder

    def test_gps_less_records_store_nan(self):
        store = DatasetStore(n_shards=1)
        store.append([make_record(time=1.0, lat=None, lon=None, value=0.5)])
        batch = store.scan("t")
        assert np.isnan(batch.lat[0]) and np.isnan(batch.lon[0])
        assert batch.value[0] == 0.5

    def test_scalar_value_extraction_skips_bools(self):
        record = make_record(time=1.0, value=None)
        record.values["charging"] = True  # type: ignore[index]
        record.values["battery"] = 0.25  # type: ignore[index]
        store = DatasetStore(n_shards=1)
        store.append([record])
        assert store.scan("t").value[0] == 0.25


class TestScans:
    @pytest.fixture()
    def store(self) -> DatasetStore:
        store = DatasetStore(n_shards=4, segment_capacity=16)
        for u in range(6):
            store.append(
                make_records(
                    40,
                    user=f"user-{u}",
                    t0=100.0 * u,
                    lat0=44.80 + 0.002 * u,
                    lon0=-0.60 + 0.002 * u,
                )
            )
        return store

    def all_rows(self, store):
        batch = store.scan("t")
        return set(zip(batch.user_names(), batch.time.tolist()))

    def test_unfiltered_scan_returns_everything(self, store):
        assert len(store.scan("t")) == 240

    def test_unknown_task_scans_empty(self, store):
        assert len(store.scan("ghost")) == 0

    def test_time_range_matches_brute_force(self, store):
        t0, t1 = 500.0, 1500.0
        batch = store.scan("t", t0=t0, t1=t1)
        brute = {(u, t) for u, t in self.all_rows(store) if t0 <= t < t1}
        assert set(zip(batch.user_names(), batch.time.tolist())) == brute
        assert len(brute) > 0

    def test_bbox_matches_brute_force(self, store):
        box = BoundingBox(south=44.81, west=-0.59, north=44.83, east=-0.57)
        batch = store.scan("t", bbox=box)
        full = store.scan("t")
        inside = (
            (full.lat >= box.south)
            & (full.lat <= box.north)
            & (full.lon >= box.west)
            & (full.lon <= box.east)
        )
        assert len(batch) == int(np.count_nonzero(inside))
        assert len(batch) > 0
        assert batch.lat.min() >= box.south and batch.lat.max() <= box.north

    def test_bbox_accepts_tuple(self, store):
        box = (44.81, -0.59, 44.83, -0.57)
        assert len(store.scan("t", bbox=box)) == len(
            store.scan("t", bbox=BoundingBox(*box))
        )

    def test_user_scan(self, store):
        batch = store.scan_user("t", "user-3")
        assert len(batch) == 40
        assert set(batch.user_names()) == {"user-3"}

    def test_unknown_user_scans_empty(self, store):
        assert len(store.scan_user("t", "nobody")) == 0

    def test_filters_compose(self, store):
        batch = store.scan("t", t0=300.0, t1=2000.0, user="user-3")
        assert set(batch.user_names()) <= {"user-3"}
        assert np.all((batch.time >= 300.0) & (batch.time < 2000.0))

    def test_scan_covers_open_and_sealed_segments(self):
        store = DatasetStore(n_shards=1, segment_capacity=8)
        store.append(make_records(12))  # 8 sealed + 4 open
        assert len(store.scan("t")) == 12


class TestCompaction:
    def test_merges_and_sorts(self):
        store = DatasetStore(n_shards=1, segment_capacity=8)
        # Out-of-order arrival: later batch has earlier timestamps.
        store.append(make_records(10, t0=1000.0))
        store.append(make_records(10, t0=0.0))
        before = store.stats()
        assert before.segments > 1
        report = store.compact()
        after = store.stats()
        assert report.segments_after < report.segments_before
        assert after.segments == 1
        assert report.records == 20
        batch = store.scan("t")
        assert len(batch) == 20
        assert np.all(np.diff(batch.time) >= 0)

    def test_compaction_preserves_scan_results(self):
        store = DatasetStore(n_shards=4, segment_capacity=8)
        for u in range(5):
            store.append(make_records(21, user=f"u{u}", t0=50.0 * u))
        expected = set(
            zip(store.scan("t").user_names(), store.scan("t").time.tolist())
        )
        store.compact()
        batch = store.scan("t")
        assert set(zip(batch.user_names(), batch.time.tolist())) == expected
        # And filtered scans still work over the merged segments.
        assert len(store.scan("t", t0=100.0, t1=500.0)) == len(
            {(u, t) for u, t in expected if 100.0 <= t < 500.0}
        )

    def test_compact_single_task(self):
        store = DatasetStore(n_shards=1, segment_capacity=4)
        store.append(make_records(10, task="a"))
        store.append(make_records(10, task="b"))
        report = store.compact(task="a")
        assert report.records == 10
        assert len(store.scan("a")) == 10 and len(store.scan("b")) == 10

    def test_compact_idempotent(self):
        store = DatasetStore(n_shards=1, segment_capacity=4)
        store.append(make_records(10))
        store.compact()
        report = store.compact()
        assert report.segments_before == report.segments_after == 1
        assert report.partitions_compacted == 0

    def test_appends_continue_after_compaction(self):
        store = DatasetStore(n_shards=1, segment_capacity=4)
        store.append(make_records(10))
        store.compact()
        store.append(make_records(5, t0=9000.0))
        assert store.n_records == 15
        assert len(store.scan("t")) == 15
