"""The platform on top of the store: Hive -> pipeline -> store -> Honeycomb."""

import numpy as np
import pytest

from repro.apisense import Campaign, CampaignConfig, SensingTask
from repro.apisense.hive import Hive
from repro.apisense.honeycomb import Honeycomb
from repro.apisense.monitoring import snapshot
from repro.errors import PlatformError
from repro.simulation import Simulator
from repro.store import DatasetStore, IngestPipeline
from repro.units import DAY
from tests.store.conftest import make_records


def make_hive(sim, **kwargs) -> Hive:
    return Hive(sim, seed=1, **kwargs)


def register_task(hive: Hive, name: str = "t") -> Honeycomb:
    """Wire a task into the Hive without the offer/acceptance dance."""
    from repro.apisense.hive import TaskStats

    honeycomb = Honeycomb("lab", hive)
    task = SensingTask(
        name=name, sensors=("gps",), sampling_period=300.0, upload_period=1800.0, end=DAY
    )
    honeycomb.register_task(task)
    hive._tasks[name] = task
    hive._task_owner[name] = honeycomb
    hive.stats.per_task[name] = TaskStats()
    return honeycomb


class TestUploadRouting:
    def test_upload_lands_in_store_and_honeycomb(self, sim):
        hive = make_hive(sim)
        honeycomb = register_task(hive)
        records = make_records(12, user="u0")
        hive.community.setdefault("u0", _user_state("u0"))
        hive.receive_upload("dev-u0", "u0", "t", records)
        assert hive.store.n_records == 0  # nothing until the flush fires
        assert honeycomb.n_records("t") == 0
        sim.run()
        assert hive.store.n_records == 12
        assert honeycomb.n_records("t") == 12

    def test_route_upload_alias(self, sim):
        hive = make_hive(sim)
        register_task(hive)
        hive.community.setdefault("u0", _user_state("u0"))
        hive.route_upload("dev-u0", "u0", "t", make_records(3, user="u0"))
        sim.run()
        assert hive.store.n_records == 3

    def test_uploads_coalesce_into_one_hook_batch(self, sim):
        hive = make_hive(sim)
        honeycomb = register_task(hive)
        batches = []
        honeycomb.add_hook(lambda name, records: batches.append(len(records)))
        hive.community.setdefault("u0", _user_state("u0"))
        # Two uploads of the same (task, user) inside one flush window.
        hive.receive_upload("dev-u0", "u0", "t", make_records(5, user="u0"))
        hive.receive_upload("dev-u0", "u0", "t", make_records(4, user="u0", t0=900.0))
        sim.run()
        assert batches == [9]

    def test_custom_store_and_policy(self, sim):
        store = DatasetStore(n_shards=2, segment_capacity=64)
        pipeline = IngestPipeline(
            sim, store, policy="reject", buffer_capacity=8, flush_delay=0.1
        )
        hive = make_hive(sim, pipeline=pipeline)
        assert hive.store is store
        register_task(hive)
        hive.community.setdefault("u0", _user_state("u0"))
        assert hive.receive_upload("dev-u0", "u0", "t", make_records(6, user="u0")) == 6
        assert (
            hive.receive_upload("dev-u0", "u0", "t", make_records(6, user="u0", t0=500.0))
            == 0
        )
        sim.run()
        assert store.n_records == 6  # second batch bounced at the gateway
        assert pipeline.stats.rejected == 6
        # Shed records are neither counted nor rewarded.
        assert hive.stats.per_task["t"].records == 6
        assert hive.stats.per_task["t"].uploads == 2

    def test_mismatched_store_and_pipeline_rejected(self, sim):
        store = DatasetStore(n_shards=2)
        other = DatasetStore(n_shards=2)
        pipeline = IngestPipeline(sim, other)
        with pytest.raises(PlatformError):
            make_hive(sim, store=store, pipeline=pipeline)

    def test_pipeline_cannot_serve_two_hives(self, sim):
        from repro.errors import StoreError

        pipeline = IngestPipeline(sim, DatasetStore(n_shards=2))
        make_hive(sim, pipeline=pipeline)
        with pytest.raises(StoreError):
            Hive(sim, pipeline=pipeline, seed=2)


class TestHoneycombStoreReads:
    def _run_campaign(self, small_population):
        campaign = Campaign(
            small_population, config=CampaignConfig(n_days=2, seed=11)
        )
        honeycomb = campaign.deploy(
            SensingTask(
                name="study",
                sensors=("gps", "battery"),
                sampling_period=300.0,
                upload_period=1800.0,
                end=2 * DAY,
            )
        )
        report = campaign.run()
        return campaign, honeycomb, report

    def test_store_agrees_with_legacy_record_lists(self, small_population):
        campaign, honeycomb, report = self._run_campaign(small_population)
        assert report.total_records > 0
        # Every record the Honeycomb holds is in the store, and vice versa.
        assert campaign.hive.store.n_records == report.total_records
        view = honeycomb.dataset_view("study")
        assert len(view) == honeycomb.n_records("study")
        legacy = {(r.user, r.time) for r in honeycomb.records("study")}
        assert set(zip(view.user_names(), view.time.tolist())) == legacy

    def test_dataset_view_filters(self, small_population):
        _, honeycomb, _ = self._run_campaign(small_population)
        day0 = honeycomb.dataset_view("study", t0=0.0, t1=float(DAY))
        assert np.all(day0.time < DAY)
        user = honeycomb.records("study")[0].user
        mine = honeycomb.dataset_view("study", user=user)
        assert set(mine.user_names()) == {user}

    def test_aggregate_view_matches_recount(self, small_population):
        _, honeycomb, _ = self._run_campaign(small_population)
        aggregate = honeycomb.aggregate("study")
        assert aggregate is not None
        assert aggregate.records == honeycomb.n_records("study")
        assert aggregate.n_users == len({r.user for r in honeycomb.records("study")})
        # Uploads ride a ~0.2 s hop + <=0.2 s flush window: lag is small
        # but strictly positive once records have been flushed.
        assert 0.0 < aggregate.lag_p95 < 3600.0 + 5.0

    def test_unknown_task_raises(self, sim):
        hive = make_hive(sim)
        honeycomb = Honeycomb("lab", hive)
        with pytest.raises(PlatformError):
            honeycomb.dataset_view("ghost")
        with pytest.raises(PlatformError):
            honeycomb.aggregate("ghost")


class TestMonitoringCounters:
    def test_snapshot_surfaces_store_and_pipeline(self, small_population):
        campaign = Campaign(small_population, config=CampaignConfig(n_days=1, seed=5))
        campaign.deploy(
            SensingTask(
                name="watched",
                sensors=("gps",),
                sampling_period=300.0,
                upload_period=1800.0,
                end=DAY,
            )
        )
        report_obj = campaign.run()
        health = snapshot(campaign.hive, campaign.sim.now)
        assert health.store_records == report_obj.total_records
        assert health.store_shards == campaign.hive.store.n_shards
        assert health.pipeline_flushes > 0
        assert health.pipeline_buffered == 0  # drained at campaign end
        assert health.mean_flush_batch > 0.0
        assert health.ingest_lag_p95 > 0.0
        text = health.to_text()
        assert "store:" in text and "ingest:" in text

    def test_empty_hive_reports_zero_store(self):
        health = snapshot(Hive(Simulator()), 0.0)
        assert health.store_records == 0
        assert health.pipeline_flushes == 0
        assert "store: 0 records" in health.to_text()


def _user_state(user: str):
    from repro.apisense.incentives import UserState

    return UserState(user=user, motivation=0.5)
