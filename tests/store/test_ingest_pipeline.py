"""Unit tests for the ingest pipeline: batching and backpressure."""

import pytest

from repro.errors import StoreError
from repro.store import DatasetStore, IngestPipeline
from tests.store.conftest import make_record, make_records


def build(sim, policy="spill", capacity=64, n_shards=1, flush_delay=0.5):
    store = DatasetStore(n_shards=n_shards, segment_capacity=256)
    pipeline = IngestPipeline(
        sim, store, policy=policy, buffer_capacity=capacity, flush_delay=flush_delay
    )
    return store, pipeline


class TestValidation:
    def test_bad_policy(self, sim):
        store = DatasetStore(n_shards=1)
        with pytest.raises(StoreError):
            IngestPipeline(sim, store, policy="fifo")

    def test_bad_capacity(self, sim):
        store = DatasetStore(n_shards=1)
        with pytest.raises(StoreError):
            IngestPipeline(sim, store, buffer_capacity=0)

    def test_bad_flush_delay(self, sim):
        store = DatasetStore(n_shards=1)
        with pytest.raises(StoreError):
            IngestPipeline(sim, store, flush_delay=-1.0)


class TestBatching:
    def test_submits_within_window_coalesce_into_one_flush(self, sim):
        store, pipeline = build(sim, flush_delay=1.0)
        flushes = []
        pipeline.add_listener(lambda recs: flushes.append(len(recs)))
        for i in range(5):
            pipeline.submit(make_records(10, t0=100.0 * i))
        assert pipeline.buffered == 50
        sim.run()
        assert flushes == [50]
        assert store.n_records == 50
        assert pipeline.stats.flushes == 1
        assert pipeline.stats.largest_flush == 50

    def test_flush_fires_after_delay(self, sim):
        _, pipeline = build(sim, flush_delay=0.5)
        flush_times = []
        pipeline.add_listener(lambda recs: flush_times.append(sim.now))
        pipeline.submit(make_records(3))
        sim.run()
        assert flush_times == [pytest.approx(0.5)]

    def test_separate_windows_make_separate_batches(self, sim):
        store, pipeline = build(sim, flush_delay=0.5)
        flushes = []
        pipeline.add_listener(lambda recs: flushes.append(len(recs)))
        pipeline.submit(make_records(10))
        sim.run()
        pipeline.submit(make_records(7, t0=1000.0))
        sim.run()
        assert flushes == [10, 7]
        assert store.n_records == 17

    def test_empty_submit_is_noop(self, sim):
        _, pipeline = build(sim)
        assert pipeline.submit([]) == 0
        assert sim.pending == 0

    def test_idle_pipeline_schedules_no_events(self, sim):
        build(sim)
        assert sim.pending == 0

    def test_shards_flush_independently(self, sim):
        # Two users that land in different shards of a 4-shard store.
        store, pipeline = build(sim, n_shards=4, flush_delay=0.5)
        users = {}
        for i in range(20):
            user = f"u{i}"
            users.setdefault(store.shard_of("t", user), user)
            if len(users) >= 2:
                break
        (shard_a, user_a), (shard_b, user_b) = list(users.items())[:2]
        assert shard_a != shard_b
        flushes = []
        pipeline.add_listener(lambda recs: flushes.append({r.user for r in recs}))
        pipeline.submit(make_records(5, user=user_a))
        pipeline.submit(make_records(5, user=user_b))
        sim.run()
        assert len(flushes) == 2
        assert {user_a} in flushes and {user_b} in flushes


class TestRejectPolicy:
    def test_overflow_batch_bounces_entirely(self, sim):
        store, pipeline = build(sim, policy="reject", capacity=10)
        assert pipeline.submit(make_records(8)) == 8
        assert pipeline.submit(make_records(5, t0=5000.0)) == 0
        assert pipeline.stats.rejected == 5
        assert pipeline.submit(make_records(2, t0=9000.0)) == 2
        sim.run()
        assert store.n_records == 10

    def test_capacity_frees_after_flush(self, sim):
        store, pipeline = build(sim, policy="reject", capacity=10)
        pipeline.submit(make_records(10))
        sim.run()  # flush empties the buffer
        assert pipeline.submit(make_records(10, t0=5000.0)) == 10
        sim.run()
        assert store.n_records == 20
        assert pipeline.stats.rejected == 0


class TestDropOldestPolicy:
    def test_oldest_buffered_records_evicted(self, sim):
        store, pipeline = build(sim, policy="drop-oldest", capacity=10)
        pipeline.submit(make_records(8, t0=0.0))
        assert pipeline.submit(make_records(5, t0=10_000.0)) == 5
        assert pipeline.stats.dropped == 3
        sim.run()
        assert store.n_records == 10
        # The three oldest records (t=0, 60, 120) were shed.
        batch = store.scan("t")
        assert float(batch.time.min()) == 180.0

    def test_giant_batch_keeps_newest_tail(self, sim):
        store, pipeline = build(sim, policy="drop-oldest", capacity=10)
        pipeline.submit(make_records(4, t0=0.0))
        # The whole batch is admitted (drop-oldest never bounces the
        # sender); its head is immediately evicted and counted dropped.
        accepted = pipeline.submit(make_records(25, t0=10_000.0))
        assert accepted == 25
        assert pipeline.stats.dropped == 4 + 15
        sim.run()
        assert store.n_records == 10
        batch = store.scan("t")
        assert float(batch.time.min()) == 10_000.0 + 15 * 60.0

    def test_no_drop_when_room(self, sim):
        store, pipeline = build(sim, policy="drop-oldest", capacity=100)
        pipeline.submit(make_records(60))
        sim.run()
        assert pipeline.stats.dropped == 0
        assert store.n_records == 60


class TestSpillPolicy:
    def test_overflow_parks_in_spill_queue(self, sim):
        store, pipeline = build(sim, policy="spill", capacity=10)
        assert pipeline.submit(make_records(25)) == 25
        assert pipeline.buffered == 10
        assert pipeline.backlog == 15
        assert pipeline.stats.spilled == 15
        sim.run()  # flush drains buffer + spill (15 < one capacity)
        assert store.n_records == 25
        assert pipeline.backlog == 0

    def test_deep_spill_drains_over_multiple_flushes(self, sim):
        store, pipeline = build(sim, policy="spill", capacity=10)
        pipeline.submit(make_records(55))
        sim.run()
        # Each flush moves buffer + at most one capacity of spill.
        assert pipeline.stats.flushes >= 3
        assert store.n_records == 55
        assert pipeline.backlog == 0

    def test_nothing_is_lost(self, sim):
        store, pipeline = build(sim, policy="spill", capacity=7)
        for i in range(10):
            pipeline.submit(make_records(13, t0=2000.0 * i))
        sim.run()
        assert store.n_records == 130
        assert pipeline.stats.loss == 0


class TestRouter:
    def test_router_receives_flushes(self, sim):
        store, pipeline = build(sim)
        routed = []
        pipeline.set_router(lambda recs: routed.append(len(recs)))
        pipeline.submit(make_records(4))
        sim.run()
        assert routed == [4]

    def test_router_is_exclusive(self, sim):
        _, pipeline = build(sim)
        pipeline.set_router(lambda recs: None)
        with pytest.raises(StoreError):
            pipeline.set_router(lambda recs: None)

    def test_observers_stack_alongside_router(self, sim):
        _, pipeline = build(sim)
        seen = []
        pipeline.set_router(lambda recs: seen.append("router"))
        pipeline.add_listener(lambda recs: seen.append("observer"))
        pipeline.submit(make_records(1))
        sim.run()
        assert seen == ["router", "observer"]


class TestFlushAll:
    def test_synchronous_drain_arms_no_new_events(self, sim):
        # flush_all drains a deep spill without parking one no-op flush
        # event per chunk in the simulator heap.
        _, pipeline = build(sim, policy="spill", capacity=5)
        pipeline.submit(make_records(23))
        armed = sim.pending  # the one flush armed by submit()
        pipeline.flush_all()
        assert sim.pending == armed

    def test_drains_buffers_and_spill(self, sim):
        store, pipeline = build(sim, policy="spill", capacity=10)
        pipeline.submit(make_records(34))
        flushed = pipeline.flush_all()
        assert flushed == 34
        assert store.n_records == 34
        assert pipeline.buffered == 0 and pipeline.backlog == 0

    def test_empty_flush_all(self, sim):
        _, pipeline = build(sim)
        assert pipeline.flush_all() == 0

    def test_listeners_notified_identically_to_timer_flushes(self, sim):
        """The FlushListener guarantee: every admitted record reaches
        every listener exactly once whether the flush was timer-driven
        or a synchronous flush_all() drain — same path, same ordering
        (router first, then listeners)."""
        records = make_records(40)

        # Timer-driven baseline.
        _, timed = build(sim, policy="spill", capacity=10)
        timed_seen: list = []
        timed.set_router(lambda recs: None)
        timed.add_listener(timed_seen.extend)
        timed.submit(records)
        sim.run()

        # flush_all()-driven drain of the identical workload.
        from repro.simulation import Simulator

        _, drained = build(Simulator(), policy="spill", capacity=10)
        order: list = []
        drained_seen: list = []
        drained.set_router(lambda recs: order.append("router"))
        drained.add_listener(lambda recs: (order.append("observer"),
                                           drained_seen.extend(recs)))
        drained.submit(records)
        drained.flush_all()

        assert drained_seen == timed_seen == records  # exactly once, in order
        assert order[:2] == ["router", "observer"]  # router precedes listeners
        assert drained.stats.flushed_records == timed.stats.flushed_records == 40

    def test_flush_all_skips_listeners_for_empty_drain(self, sim):
        _, pipeline = build(sim)
        seen = []
        pipeline.add_listener(seen.append)
        pipeline.flush_all()
        assert seen == []  # empty flushes are never delivered


class TestStats:
    def test_counters_add_up(self, sim):
        _, pipeline = build(sim, policy="spill", capacity=10)
        pipeline.submit(make_records(25))
        pipeline.submit([make_record(time=99999.0)])
        sim.run()
        stats = pipeline.stats
        assert stats.submitted == 26
        assert stats.accepted == 26
        assert stats.flushed_records == 26
        assert stats.mean_flush_batch == pytest.approx(
            stats.flushed_records / stats.flushes
        )


class TestBackpressureAccounting:
    """Regression: counters are one-per-record and always reconcile.

    ``submitted = accepted + rejected`` at the admission gate, and every
    accepted record is exactly one of flushed / dropped / buffered /
    spill-parked (``pipeline.unaccounted == 0`` at *any* instant).
    """

    def check(self, pipeline):
        stats = pipeline.stats
        assert stats.submitted == stats.accepted + stats.rejected
        assert pipeline.unaccounted == 0

    @pytest.mark.parametrize("policy", ["drop-oldest", "reject", "spill"])
    def test_reconciles_at_every_stage(self, sim, policy):
        store, pipeline = build(sim, policy=policy, capacity=10)
        self.check(pipeline)
        pipeline.submit(make_records(8, t0=0.0))
        self.check(pipeline)
        pipeline.submit(make_records(25, t0=10_000.0))  # overflows
        self.check(pipeline)
        sim.run()
        self.check(pipeline)
        pipeline.submit(make_records(7, t0=20_000.0))
        pipeline.flush_all()
        self.check(pipeline)
        # Quiescent: everything admitted is in the store or was dropped.
        assert store.n_records == pipeline.stats.accepted - pipeline.stats.dropped

    def test_giant_batch_head_counted_once(self, sim):
        # The batch head admitted-and-evicted in one call must appear in
        # both accepted and dropped (once each), never only in dropped.
        _, pipeline = build(sim, policy="drop-oldest", capacity=10)
        pipeline.submit(make_records(30))
        stats = pipeline.stats
        assert stats.accepted == 30
        assert stats.dropped == 20
        assert pipeline.unaccounted == 0

    def test_spilled_records_are_never_dropped(self, sim):
        # Mutual exclusivity: a record that took the spill detour is
        # still admitted-and-delivered — spill and drop never overlap.
        store, pipeline = build(sim, policy="spill", capacity=5)
        for i in range(6):
            pipeline.submit(make_records(12, t0=3000.0 * i))
        assert pipeline.stats.spilled > 0
        assert pipeline.unaccounted == 0
        sim.run()
        pipeline.flush_all()
        assert pipeline.stats.dropped == 0 and pipeline.stats.rejected == 0
        assert store.n_records == pipeline.stats.accepted == 72
        assert pipeline.unaccounted == 0
