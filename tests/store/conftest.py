"""Shared helpers for the store subsystem tests."""

from __future__ import annotations

import pytest

from repro.apisense.device import SensorRecord
from repro.geo.point import GeoPoint
from repro.simulation import Simulator


def make_record(
    user: str = "u0",
    task: str = "t",
    time: float = 0.0,
    lat: float | None = 44.84,
    lon: float | None = -0.58,
    value: float | None = 0.7,
) -> SensorRecord:
    values: dict[str, object] = {}
    if lat is not None and lon is not None:
        values["gps"] = GeoPoint(lat, lon)
    if value is not None:
        values["battery"] = value
    return SensorRecord(
        device_id=f"dev-{user}", user=user, task=task, time=time, values=values
    )


def make_records(
    n: int,
    user: str = "u0",
    task: str = "t",
    t0: float = 0.0,
    dt: float = 60.0,
    lat0: float = 44.80,
    lon0: float = -0.60,
    step_deg: float = 0.001,
) -> list[SensorRecord]:
    """``n`` records walking north-east, one fix every ``dt`` seconds."""
    return [
        make_record(
            user=user,
            task=task,
            time=t0 + i * dt,
            lat=lat0 + i * step_deg,
            lon=lon0 + i * step_deg,
            value=1.0 - i * 0.001,
        )
        for i in range(n)
    ]


@pytest.fixture()
def sim() -> Simulator:
    return Simulator()
