"""Unit tests for the P² streaming quantile estimator."""

import numpy as np
import pytest

from repro.errors import StoreError
from repro.store.quantiles import P2Quantile


class TestP2Quantile:
    def test_parameter_validation(self):
        for p in (0.0, 1.0, -0.1, 1.5):
            with pytest.raises(StoreError):
                P2Quantile(p)

    def test_empty_is_nan(self):
        assert np.isnan(P2Quantile(0.5).value())

    def test_small_samples_exact(self):
        q = P2Quantile(0.5)
        for x in [3.0, 1.0, 2.0]:
            q.add(x)
        assert q.value() == 2.0
        assert len(q) == 3

    @pytest.mark.parametrize("p", [0.5, 0.95, 0.99])
    def test_tracks_uniform_stream(self, p):
        rng = np.random.default_rng(7)
        samples = rng.uniform(0.0, 100.0, size=5000)
        estimator = P2Quantile(p)
        for x in samples:
            estimator.add(x)
        exact = float(np.percentile(samples, p * 100.0))
        assert estimator.value() == pytest.approx(exact, abs=2.5)

    def test_tracks_skewed_stream(self):
        rng = np.random.default_rng(11)
        samples = rng.exponential(10.0, size=5000)
        estimator = P2Quantile(0.95)
        for x in samples:
            estimator.add(x)
        exact = float(np.percentile(samples, 95.0))
        assert estimator.value() == pytest.approx(exact, rel=0.15)

    def test_constant_stream(self):
        estimator = P2Quantile(0.95)
        for _ in range(100):
            estimator.add(5.0)
        assert estimator.value() == 5.0
