"""Unit tests for the P² streaming quantile estimator and its merge."""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StoreError
from repro.store.quantiles import P2Quantile


def fill(samples, p: float) -> P2Quantile:
    sketch = P2Quantile(p)
    for x in samples:
        sketch.add(float(x))
    return sketch


class TestP2Quantile:
    def test_parameter_validation(self):
        for p in (0.0, 1.0, -0.1, 1.5):
            with pytest.raises(StoreError):
                P2Quantile(p)

    def test_empty_is_nan(self):
        assert np.isnan(P2Quantile(0.5).value())

    def test_small_samples_exact(self):
        q = P2Quantile(0.5)
        for x in [3.0, 1.0, 2.0]:
            q.add(x)
        assert q.value() == 2.0
        assert len(q) == 3

    @pytest.mark.parametrize("p", [0.5, 0.95, 0.99])
    def test_tracks_uniform_stream(self, p):
        rng = np.random.default_rng(7)
        samples = rng.uniform(0.0, 100.0, size=5000)
        estimator = P2Quantile(p)
        for x in samples:
            estimator.add(x)
        exact = float(np.percentile(samples, p * 100.0))
        assert estimator.value() == pytest.approx(exact, abs=2.5)

    def test_tracks_skewed_stream(self):
        rng = np.random.default_rng(11)
        samples = rng.exponential(10.0, size=5000)
        estimator = P2Quantile(0.95)
        for x in samples:
            estimator.add(x)
        exact = float(np.percentile(samples, 95.0))
        assert estimator.value() == pytest.approx(exact, rel=0.15)

    def test_constant_stream(self):
        estimator = P2Quantile(0.95)
        for _ in range(100):
            estimator.add(5.0)
        assert estimator.value() == 5.0


class TestMergeValidation:
    def test_empty_collection_rejected(self):
        with pytest.raises(StoreError):
            P2Quantile.merge([])

    def test_mixed_quantiles_rejected(self):
        with pytest.raises(StoreError):
            P2Quantile.merge([P2Quantile(0.5), P2Quantile(0.95)])

    def test_all_empty_members_merge_to_empty(self):
        merged = P2Quantile.merge([P2Quantile(0.5), P2Quantile(0.5)])
        assert len(merged) == 0
        assert np.isnan(merged.value())

    def test_single_member_roundtrip(self):
        data = np.linspace(0.0, 10.0, 200)
        merged = P2Quantile.merge([fill(data, 0.5)])
        assert len(merged) == 200
        assert merged.value() == pytest.approx(5.0, abs=0.5)

    def test_tiny_members_merge_exactly(self):
        # Members still holding raw samples pool them exactly.
        merged = P2Quantile.merge([fill([1.0, 2.0], 0.5), fill([3.0], 0.5)])
        assert len(merged) == 3
        assert merged.value() == 2.0


class TestMergeProperties:
    """Merged-sketch error vs pooled-data ground truth stays bounded.

    Mirrors the federation's use: N member hives each sketch their slice
    of one stream; the merger folds the sketches.  The merged estimate
    must stay close to the percentile of the pooled data no matter how
    the stream was split (sizes, order, imbalance).
    """

    @given(
        seed=st.integers(0, 10_000),
        n_parts=st.integers(min_value=2, max_value=6),
        p=st.sampled_from([0.5, 0.95, 0.99]),
    )
    @settings(max_examples=40, deadline=None)
    def test_merge_error_bounded_uniform(self, seed, n_parts, p):
        rng = np.random.default_rng(seed)
        data = rng.uniform(0.0, 100.0, size=int(rng.integers(50, 3000)))
        cuts = np.sort(rng.integers(0, len(data), size=n_parts - 1))
        parts = np.split(rng.permutation(data), cuts)
        merged = P2Quantile.merge([fill(part, p) for part in parts])
        exact = float(np.percentile(data, p * 100.0))
        assert len(merged) == len(data)
        # 5% of the data range bounds both sketch and merge error here.
        assert merged.value() == pytest.approx(exact, abs=5.0)

    @given(seed=st.integers(0, 10_000), n_parts=st.integers(2, 5))
    @settings(max_examples=25, deadline=None)
    def test_merge_error_bounded_skewed(self, seed, n_parts):
        rng = np.random.default_rng(seed)
        data = rng.exponential(10.0, size=2000)
        parts = np.array_split(rng.permutation(data), n_parts)
        merged = P2Quantile.merge([fill(part, 0.95) for part in parts])
        exact = float(np.percentile(data, 95.0))
        assert merged.value() == pytest.approx(exact, rel=0.25)

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_merge_preserves_extremes_and_count(self, seed):
        rng = np.random.default_rng(seed)
        data = rng.normal(0.0, 50.0, size=500)
        parts = np.array_split(data, 4)
        merged = P2Quantile.merge([fill(part, 0.5) for part in parts])
        assert len(merged) == len(data)
        # The pooled min/max are carried exactly into the outer markers.
        assert merged._q[0] == pytest.approx(float(np.min(data)))
        assert merged._q[-1] == pytest.approx(float(np.max(data)))

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_merged_sketch_stays_live(self, seed):
        """A merged sketch keeps absorbing observations correctly."""
        rng = np.random.default_rng(seed)
        before = rng.uniform(0.0, 100.0, size=400)
        after = rng.uniform(0.0, 100.0, size=1600)
        merged = P2Quantile.merge([fill(half, 0.95) for half in np.split(before, 2)])
        for x in after:
            merged.add(float(x))
        pooled = np.concatenate([before, after])
        assert len(merged) == len(pooled)
        assert merged.value() == pytest.approx(
            float(np.percentile(pooled, 95.0)), abs=5.0
        )


class TestMergeSmallMembers:
    """Regression: members with < 5 observations have no live marker
    state (``_q`` is still the raw sorted sample); merging must pool
    their samples instead of reading uninitialised markers."""

    @pytest.mark.parametrize("small_size", [0, 1, 4])
    def test_small_member_pools_into_big_member(self, small_size):
        rng = random.Random(31)
        big = P2Quantile(0.5)
        pooled = []
        for _ in range(200):
            x = rng.gauss(50.0, 10.0)
            big.add(x)
            pooled.append(x)
        small = P2Quantile(0.5)
        for _ in range(small_size):
            x = rng.gauss(50.0, 10.0)
            small.add(x)
            pooled.append(x)
        merged = P2Quantile.merge([big, small])
        assert len(merged) == len(pooled)
        pooled.sort()
        truth = pooled[len(pooled) // 2]
        assert abs(merged.value() - truth) < 5.0
        # Extremes are exact even when the small member holds them.
        if small_size:
            assert merged._q[0] == min(pooled)
            assert merged._q[4] == max(pooled)

    def test_all_members_small_pools_raw_samples(self):
        members = []
        values = []
        rng = random.Random(32)
        for size in (1, 4, 3, 2):
            sketch = P2Quantile(0.9)
            for _ in range(size):
                x = rng.uniform(0.0, 1.0)
                sketch.add(x)
                values.append(x)
            members.append(sketch)
        merged = P2Quantile.merge(members)
        assert len(merged) == len(values)
        values.sort()
        assert merged._q[0] == values[0]
        assert abs(merged.value() - values[int(0.9 * (len(values) - 1))]) < 0.35

    def test_one_observation_member_does_not_bias_cdf(self):
        # The old CDF combination gave a 1-obs member a flat 0.5 CDF
        # everywhere, injecting phantom mass below its value.
        rng = random.Random(33)
        big = P2Quantile(0.5)
        for _ in range(500):
            big.add(rng.uniform(0.0, 1.0))
        outlier = P2Quantile(0.5)
        outlier.add(100.0)  # far above the big member's range
        merged = P2Quantile.merge([big, outlier])
        # The median of 500 uniforms + one outlier stays near 0.5.
        assert abs(merged.value() - 0.5) < 0.1
        assert merged._q[4] == 100.0

    def test_merged_with_small_members_stays_live(self):
        rng = random.Random(34)
        big = P2Quantile(0.5)
        for _ in range(100):
            big.add(rng.uniform(0.0, 1.0))
        small = P2Quantile(0.5)
        small.add(0.5)
        merged = P2Quantile.merge([big, small])
        for _ in range(100):
            merged.add(rng.uniform(0.0, 1.0))
        assert len(merged) == 201
        assert 0.3 < merged.value() < 0.7
