"""Unit tests for POI suppression and mechanism composition."""

import numpy as np
import pytest

from repro.errors import MechanismError
from repro.geo.distance import haversine_m
from repro.privacy import PoiAttack, poi_recall
from repro.privacy.mechanisms import (
    CompositeMechanism,
    GeoIndistinguishabilityMechanism,
    IdentityMechanism,
    PoiSuppressionMechanism,
    SpeedSmoothingMechanism,
)
from repro.units import HOUR


def mean_recall(population, protected, radius_m=250.0):
    found = PoiAttack(denoise_window=9).run(protected)
    recalls = [
        poi_recall(
            population.truth.pois_of(user, min_total_dwell=2 * HOUR),
            found.get(user, []),
            radius_m=radius_m,
        )
        for user in population.dataset.users
        if user in protected
    ]
    return sum(recalls) / len(recalls) if recalls else 0.0


class TestPoiSuppression:
    def test_invalid_radius(self):
        with pytest.raises(MechanismError):
            PoiSuppressionMechanism(erase_radius_m=0.0)

    def test_records_near_stays_removed(self, medium_population):
        mechanism = PoiSuppressionMechanism(erase_radius_m=400.0)
        protected = mechanism.protect(medium_population.dataset, seed=1)
        # Every surviving record must be far from the user's home.
        for trajectory in protected:
            home = medium_population.profiles[trajectory.user].home
            for record in trajectory.records:
                assert haversine_m(record.point, home) > 350.0

    def test_reduces_poi_recall(self, medium_population):
        mechanism = PoiSuppressionMechanism(erase_radius_m=400.0)
        protected = mechanism.protect(medium_population.dataset, seed=1)
        raw_recall = mean_recall(medium_population, medium_population.dataset)
        suppressed_recall = mean_recall(medium_population, protected)
        assert suppressed_recall < raw_recall / 2

    def test_movement_preserved(self, medium_population):
        mechanism = PoiSuppressionMechanism(erase_radius_m=400.0)
        protected = mechanism.protect(medium_population.dataset, seed=1)
        # Only the commute fragments survive (people spend most of the
        # day *at* POIs — which is exactly the weakness of suppression
        # compared to smoothing), but those fragments must survive.
        assert protected.n_records > 200
        assert len(protected) >= len(medium_population.dataset) // 2

    def test_trajectory_without_stays_untouched(self, straight_line_trajectory):
        mechanism = PoiSuppressionMechanism()
        result = mechanism.protect_trajectory(
            straight_line_trajectory, np.random.default_rng(1)
        )
        assert result is not None
        assert result.records == straight_line_trajectory.records


class TestComposite:
    def test_needs_two_members(self):
        with pytest.raises(MechanismError):
            CompositeMechanism([IdentityMechanism()])

    def test_name_concatenates(self):
        composite = CompositeMechanism(
            [SpeedSmoothingMechanism(100.0), GeoIndistinguishabilityMechanism(0.05)]
        )
        assert composite.name == "speed-smoothing+geo-indistinguishability"

    def test_identity_composition_is_identity(self, small_population):
        composite = CompositeMechanism([IdentityMechanism(), IdentityMechanism()])
        protected = composite.protect(small_population.dataset, seed=1)
        for trajectory in protected:
            original = small_population.dataset.get(trajectory.user)
            assert trajectory.records == original.records

    def test_smoothing_plus_noise_hides_pois(self, medium_population):
        composite = CompositeMechanism(
            [SpeedSmoothingMechanism(100.0), GeoIndistinguishabilityMechanism(0.05)]
        )
        protected = composite.protect(medium_population.dataset, seed=1)
        assert mean_recall(medium_population, protected) <= 0.3

    def test_composition_order_applies_left_to_right(self, medium_population):
        """Smoothing first keeps chord structure; noise after shifts each
        point: consecutive distances vary around the smoothing step."""
        composite = CompositeMechanism(
            [SpeedSmoothingMechanism(100.0), GeoIndistinguishabilityMechanism(0.05)]
        )
        protected = composite.protect(medium_population.dataset, seed=1)
        trajectory = next(iter(protected))
        day = trajectory.split_by_day()[0]
        gaps = [
            haversine_m(a.point, b.point)
            for a, b in zip(day.records, day.records[1:])
        ]
        mean_gap = sum(gaps) / len(gaps)
        assert 60.0 < mean_gap < 220.0  # ~100 m steps + ~40 m noise

    def test_describe_lists_members(self):
        composite = CompositeMechanism(
            [SpeedSmoothingMechanism(100.0), GeoIndistinguishabilityMechanism(0.05)]
        )
        description = composite.describe()
        assert len(description["members"]) == 2
