"""Unit tests for POI extraction (stay points + clustering)."""

import numpy as np
import pytest

from repro.errors import MechanismError
from repro.geo.point import GeoPoint, Record
from repro.geo.trajectory import Trajectory
from repro.privacy.pois import PoiExtractor, PoiExtractorConfig
from repro.units import HOUR, MINUTE

HOME = GeoPoint(44.80, -0.60)
WORK = GeoPoint(44.84, -0.56)


def stop_and_go_trajectory(
    dwell_minutes: float = 60.0,
    noise_deg: float = 0.00005,
    seed: int = 1,
) -> Trajectory:
    """Dwell at HOME, commute, dwell at WORK, one fix per minute."""
    rng = np.random.default_rng(seed)
    records = []
    time = 0.0

    def dwell(place: GeoPoint, minutes: float) -> None:
        nonlocal time
        for _ in range(int(minutes)):
            records.append(
                Record(
                    point=GeoPoint(
                        place.lat + float(rng.normal(0, noise_deg)),
                        place.lon + float(rng.normal(0, noise_deg)),
                    ),
                    time=time,
                )
            )
            time += 60.0

    def commute(a: GeoPoint, b: GeoPoint, minutes: int = 20) -> None:
        nonlocal time
        for i in range(minutes):
            f = (i + 1) / minutes
            records.append(
                Record(
                    point=GeoPoint(a.lat + (b.lat - a.lat) * f, a.lon + (b.lon - a.lon) * f),
                    time=time,
                )
            )
            time += 60.0

    dwell(HOME, dwell_minutes)
    commute(HOME, WORK)
    dwell(WORK, dwell_minutes)
    return Trajectory.from_records("u", records)


class TestConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"roam_distance_m": 0.0},
            {"min_dwell": -1.0},
            {"merge_radius_m": -5.0},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(MechanismError):
            PoiExtractorConfig(**kwargs)


class TestStayPoints:
    def test_finds_both_stops(self):
        extractor = PoiExtractor()
        stays = extractor.stay_points(stop_and_go_trajectory())
        assert len(stays) == 2
        assert stays[0].dwell >= 45 * MINUTE
        assert stays[1].start > stays[0].end

    def test_stay_centers_near_anchors(self):
        from repro.geo.distance import haversine_m

        stays = PoiExtractor().stay_points(stop_and_go_trajectory())
        assert haversine_m(stays[0].center, HOME) < 50.0
        assert haversine_m(stays[1].center, WORK) < 50.0

    def test_short_dwell_ignored(self):
        extractor = PoiExtractor(PoiExtractorConfig(min_dwell=30 * MINUTE))
        stays = extractor.stay_points(stop_and_go_trajectory(dwell_minutes=10))
        assert stays == []

    def test_commute_not_a_stay(self):
        # Pure movement trajectory: no dwell episodes at all.
        records = [
            Record(point=GeoPoint(44.80 + 0.002 * i, -0.60), time=60.0 * i)
            for i in range(60)
        ]
        trajectory = Trajectory.from_records("u", records)
        assert PoiExtractor().stay_points(trajectory) == []

    def test_stay_point_count_records(self):
        stays = PoiExtractor().stay_points(stop_and_go_trajectory(dwell_minutes=30))
        assert all(s.n_records >= 15 for s in stays)


class TestClustering:
    def test_repeated_visits_merge(self):
        extractor = PoiExtractor()
        day1 = extractor.stay_points(stop_and_go_trajectory(seed=1))
        day2 = extractor.stay_points(stop_and_go_trajectory(seed=2))
        pois = extractor.cluster(day1 + day2)
        assert len(pois) == 2  # HOME and WORK, each visited twice
        assert all(p.n_visits == 2 for p in pois)

    def test_dwell_accumulates(self):
        extractor = PoiExtractor()
        stays = extractor.stay_points(stop_and_go_trajectory(dwell_minutes=60))
        pois = extractor.cluster(stays + stays)
        for poi in pois:
            assert poi.total_dwell >= 100 * MINUTE

    def test_min_total_dwell_filters(self):
        config = PoiExtractorConfig(min_total_dwell=10 * HOUR)
        extractor = PoiExtractor(config)
        assert extractor.extract(stop_and_go_trajectory(dwell_minutes=60)) == []

    def test_ranked_by_dwell(self):
        extractor = PoiExtractor()
        trajectory = stop_and_go_trajectory(dwell_minutes=60)
        pois = extractor.extract(trajectory)
        dwells = [p.total_dwell for p in pois]
        assert dwells == sorted(dwells, reverse=True)

    def test_empty_input(self):
        assert PoiExtractor().cluster([]) == []


class TestExtractMany:
    def test_pools_across_days(self, medium_population):
        extractor = PoiExtractor()
        user = medium_population.dataset.users[0]
        days = medium_population.dataset.get(user).split_by_day()
        pooled = extractor.extract_many(days)
        # Home must emerge as the top POI across days.
        from repro.geo.distance import haversine_m

        home = medium_population.profiles[user].home
        assert haversine_m(pooled[0].center, home) < 150.0
