"""Unit tests common to all location-privacy mechanisms."""

import numpy as np
import pytest

from repro.errors import MechanismError
from repro.geo.distance import haversine_m
from repro.mobility.dataset import MobilityDataset
from repro.privacy.mechanisms import (
    GeoIndistinguishabilityMechanism,
    IdentityMechanism,
    SpatialCloakingMechanism,
    SpeedSmoothingMechanism,
    TemporalDownsamplingMechanism,
)

ALL_MECHANISMS = [
    IdentityMechanism(),
    GeoIndistinguishabilityMechanism(epsilon=0.01),
    SpatialCloakingMechanism(cell_size_m=300.0),
    TemporalDownsamplingMechanism(window=600.0),
    SpeedSmoothingMechanism(epsilon_m=100.0),
]


@pytest.mark.parametrize("mechanism", ALL_MECHANISMS, ids=lambda m: m.name)
class TestMechanismContract:
    def test_protect_returns_dataset(self, mechanism, small_population):
        protected = mechanism.protect(small_population.dataset, seed=1)
        assert isinstance(protected, MobilityDataset)
        assert len(protected) <= len(small_population.dataset)

    def test_protect_deterministic_per_seed(self, mechanism, small_population):
        a = mechanism.protect(small_population.dataset, seed=5)
        b = mechanism.protect(small_population.dataset, seed=5)
        assert a.users == b.users
        for user in a.users:
            assert a.get(user).records == b.get(user).records

    def test_protected_users_subset(self, mechanism, small_population):
        protected = mechanism.protect(small_population.dataset, seed=1)
        assert set(protected.users) <= set(small_population.dataset.users)

    def test_describe_has_name(self, mechanism):
        description = mechanism.describe()
        assert description["mechanism"] == mechanism.name

    def test_times_stay_within_original_span(self, mechanism, small_population):
        protected = mechanism.protect(small_population.dataset, seed=1)
        for trajectory in protected:
            original = small_population.dataset.get(trajectory.user)
            assert trajectory.start_time >= original.start_time - 1e-6
            assert trajectory.end_time <= original.end_time + 1e-6


class TestIdentity:
    def test_exact_passthrough(self, small_population):
        protected = IdentityMechanism().protect(small_population.dataset)
        for trajectory in protected:
            original = small_population.dataset.get(trajectory.user)
            assert trajectory.records == original.records


class TestGeoIndistinguishability:
    def test_invalid_epsilon(self):
        with pytest.raises(MechanismError):
            GeoIndistinguishabilityMechanism(epsilon=0.0)

    def test_from_radius(self):
        import math

        mechanism = GeoIndistinguishabilityMechanism.from_radius(math.log(4), 200.0)
        assert mechanism.epsilon == pytest.approx(math.log(4) / 200.0)
        with pytest.raises(MechanismError):
            GeoIndistinguishabilityMechanism.from_radius(1.0, 0.0)

    def test_mean_displacement_matches_theory(self, small_population):
        epsilon = 0.01
        mechanism = GeoIndistinguishabilityMechanism(epsilon)
        trajectory = small_population.dataset.get(small_population.dataset.users[0])
        protected = mechanism.protect_trajectory(trajectory, np.random.default_rng(3))
        displacements = [
            haversine_m(a.point, b.point)
            for a, b in zip(trajectory.records, protected.records)
        ]
        assert np.mean(displacements) == pytest.approx(
            mechanism.expected_displacement_m(), rel=0.1
        )

    def test_record_count_preserved(self, small_population):
        protected = GeoIndistinguishabilityMechanism(0.01).protect(
            small_population.dataset, seed=2
        )
        assert protected.n_records == small_population.dataset.n_records

    def test_smaller_epsilon_more_noise(self, small_population):
        trajectory = small_population.dataset.get(small_population.dataset.users[0])

        def mean_displacement(epsilon: float) -> float:
            mechanism = GeoIndistinguishabilityMechanism(epsilon)
            protected = mechanism.protect_trajectory(
                trajectory, np.random.default_rng(4)
            )
            return float(
                np.mean(
                    [
                        haversine_m(a.point, b.point)
                        for a, b in zip(trajectory.records, protected.records)
                    ]
                )
            )

        assert mean_displacement(0.001) > mean_displacement(0.01) * 5


class TestSpatialCloaking:
    def test_invalid_cell(self):
        with pytest.raises(MechanismError):
            SpatialCloakingMechanism(cell_size_m=-1.0)

    def test_positions_quantized(self, small_population):
        mechanism = SpatialCloakingMechanism(cell_size_m=400.0)
        protected = mechanism.protect(small_population.dataset, seed=1)
        distinct = {
            (round(r.lat, 7), round(r.lon, 7))
            for _, r in protected.all_records()
        }
        raw_distinct = {
            (round(r.lat, 7), round(r.lon, 7))
            for _, r in small_population.dataset.all_records()
        }
        assert len(distinct) < len(raw_distinct) and len(distinct) < 2000

    def test_displacement_bounded_by_cell_diagonal(self, small_population):
        cell = 400.0
        mechanism = SpatialCloakingMechanism(cell_size_m=cell)
        protected = mechanism.protect(small_population.dataset, seed=1)
        for user in protected.users:
            raw = small_population.dataset.get(user)
            cloaked = protected.get(user)
            for a, b in zip(raw.records, cloaked.records):
                assert haversine_m(a.point, b.point) <= cell * 0.71 + 1.0

    def test_shared_grid_across_users(self, small_population):
        # Dataset-level protection must anchor one grid for all users:
        # identical raw positions from different users cloak identically.
        mechanism = SpatialCloakingMechanism(cell_size_m=400.0)
        protected = mechanism.protect(small_population.dataset, seed=1)
        assert len(protected) == len(small_population.dataset)


class TestTemporalDownsampling:
    def test_invalid_window(self):
        with pytest.raises(MechanismError):
            TemporalDownsamplingMechanism(window=0.0)

    def test_at_most_one_record_per_window(self, small_population):
        window = 600.0
        mechanism = TemporalDownsamplingMechanism(window=window)
        protected = mechanism.protect(small_population.dataset, seed=1)
        for trajectory in protected:
            windows = [int(r.time // window) for r in trajectory]
            assert len(windows) == len(set(windows))

    def test_thins_records(self, small_population):
        mechanism = TemporalDownsamplingMechanism(window=600.0)
        protected = mechanism.protect(small_population.dataset, seed=1)
        assert protected.n_records < small_population.dataset.n_records / 3

    def test_positions_untouched(self, small_population):
        mechanism = TemporalDownsamplingMechanism(window=600.0)
        protected = mechanism.protect(small_population.dataset, seed=1)
        raw_positions = {
            (r.time, r.lat, r.lon) for _, r in small_population.dataset.all_records()
        }
        for _, record in protected.all_records():
            assert (record.time, record.lat, record.lon) in raw_positions
