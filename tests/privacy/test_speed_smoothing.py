"""Unit tests for the speed-smoothing mechanism (the paper's core)."""

import numpy as np
import pytest

from repro.errors import MechanismError
from repro.privacy.mechanisms import SpeedSmoothingMechanism
from repro.privacy.pois import PoiExtractor
from repro.units import DAY


class TestValidation:
    def test_invalid_epsilon(self):
        with pytest.raises(MechanismError):
            SpeedSmoothingMechanism(epsilon_m=0.0)

    def test_invalid_resampling(self):
        with pytest.raises(MechanismError):
            SpeedSmoothingMechanism(resampling="bogus")

    def test_min_points_floor(self):
        with pytest.raises(MechanismError):
            SpeedSmoothingMechanism(min_points=2)


class TestConstantSpeed:
    def test_speed_is_constant_within_day(self, medium_population):
        mechanism = SpeedSmoothingMechanism(epsilon_m=100.0)
        protected = mechanism.protect(medium_population.dataset, seed=1)
        for trajectory in protected:
            for day in trajectory.split_by_day():
                if len(day) < 3:
                    continue
                speeds = day.speeds()
                mean = np.mean(speeds)
                # Chord steps are equal and so are time steps -> constant.
                assert np.std(speeds) / mean < 0.1

    def test_day_time_span_preserved(self, medium_population):
        mechanism = SpeedSmoothingMechanism(epsilon_m=100.0)
        raw = medium_population.dataset
        protected = mechanism.protect(raw, seed=1)
        for trajectory in protected:
            raw_days = {
                int(d.start_time // DAY): d
                for d in raw.get(trajectory.user).split_by_day()
            }
            for day in trajectory.split_by_day():
                raw_day = raw_days[int(day.start_time // DAY)]
                assert day.start_time >= raw_day.start_time - 1e-6
                assert day.end_time <= raw_day.end_time + 1e-6


class TestStopHiding:
    def test_stay_detector_is_non_discriminative(self, medium_population):
        """Under constant speed the stay detector either fires everywhere
        (very low published speed) or nowhere — both useless.  What matters
        is that its *best-ranked* candidates no longer point at the true
        POIs; the end-to-end claim (E3) is asserted via the POI attack."""
        from repro.privacy.attacks import PoiAttack
        from repro.privacy.metrics import poi_recall
        from repro.units import HOUR

        mechanism = SpeedSmoothingMechanism(epsilon_m=100.0)
        protected = mechanism.protect(medium_population.dataset, seed=1)
        found = PoiAttack(denoise_window=9).run(protected)
        recalls = [
            poi_recall(
                medium_population.truth.pois_of(user, min_total_dwell=2 * HOUR),
                found.get(user, []),
                radius_m=250.0,
            )
            for user in protected.users
        ]
        assert sum(recalls) / len(recalls) <= 0.3

    def test_endpoints_trimmed(self, medium_population):
        # The published path must not start exactly at the user's home.
        from repro.geo.distance import haversine_m

        mechanism = SpeedSmoothingMechanism(epsilon_m=100.0)
        protected = mechanism.protect(medium_population.dataset, seed=1)
        for trajectory in protected:
            home = medium_population.profiles[trajectory.user].home
            first_points = [day.records[0].point for day in trajectory.split_by_day()]
            distances = [haversine_m(p, home) for p in first_points]
            assert min(distances) > 30.0


class TestSuppression:
    def test_stationary_day_suppressed(self):
        from repro.geo.point import GeoPoint, Record
        from repro.geo.trajectory import Trajectory
        from repro.mobility.dataset import MobilityDataset

        rng = np.random.default_rng(9)
        records = [
            Record(
                point=GeoPoint(
                    44.8 + float(rng.normal(0, 0.0001)),
                    -0.58 + float(rng.normal(0, 0.0001)),
                ),
                time=120.0 * i,
            )
            for i in range(500)
        ]
        dataset = MobilityDataset([Trajectory.from_records("homebody", records)])
        protected = SpeedSmoothingMechanism(epsilon_m=100.0).protect(dataset, seed=1)
        assert len(protected) == 0

    def test_active_days_survive(self, medium_population):
        mechanism = SpeedSmoothingMechanism(epsilon_m=100.0)
        protected = mechanism.protect(medium_population.dataset, seed=1)
        # Work-day commutes are several km: most users must survive.
        assert len(protected) == len(medium_population.dataset)


class TestResolutionTradeoff:
    def test_larger_epsilon_fewer_points(self, medium_population):
        fine = SpeedSmoothingMechanism(epsilon_m=100.0).protect(
            medium_population.dataset, seed=1
        )
        coarse = SpeedSmoothingMechanism(epsilon_m=400.0).protect(
            medium_population.dataset, seed=1
        )
        assert coarse.n_records < fine.n_records

    def test_curvilinear_ablation_leaks_stops(self, medium_population):
        """The ablation documented in DESIGN.md: curvilinear resampling
        keeps noise-generated path length at stops and therefore leaks
        dense spatial clusters there; chord resampling does not."""
        chord = SpeedSmoothingMechanism(epsilon_m=100.0, resampling="chord")
        curvi = SpeedSmoothingMechanism(epsilon_m=100.0, resampling="curvilinear")
        chord_protected = chord.protect(medium_population.dataset, seed=1)
        curvi_protected = curvi.protect(medium_population.dataset, seed=1)
        # Noise path-length at stops inflates the curvilinear point count.
        assert curvi_protected.n_records > 2 * chord_protected.n_records
