"""Unit tests for the privacy budget ledger."""

import pytest

from repro.errors import PrivacyRequirementError
from repro.privacy.budget import PrivacyBudgetLedger


class TestValidation:
    def test_bad_caps(self):
        with pytest.raises(PrivacyRequirementError):
            PrivacyBudgetLedger(epsilon_cap=0.0)
        with pytest.raises(PrivacyRequirementError):
            PrivacyBudgetLedger(exposure_cap=0)

    def test_negative_epsilon_release(self):
        ledger = PrivacyBudgetLedger()
        with pytest.raises(PrivacyRequirementError):
            ledger.can_release(["u"], epsilon=-0.1)


class TestAccounting:
    def test_fresh_user_has_full_budget(self):
        ledger = PrivacyBudgetLedger(epsilon_cap=1.0, exposure_cap=5)
        assert ledger.remaining_epsilon("alice") == 1.0
        assert ledger.remaining_exposures("alice") == 5

    def test_epsilon_composes_additively(self):
        ledger = PrivacyBudgetLedger(epsilon_cap=1.0)
        ledger.authorize(["alice"], epsilon=0.3)
        ledger.authorize(["alice"], epsilon=0.3)
        assert ledger.remaining_epsilon("alice") == pytest.approx(0.4)
        assert ledger.account("alice").exposures == 2

    def test_exposure_cap_enforced(self):
        ledger = PrivacyBudgetLedger(epsilon_cap=100.0, exposure_cap=2)
        ledger.authorize(["alice"])
        ledger.authorize(["alice"])
        with pytest.raises(PrivacyRequirementError):
            ledger.authorize(["alice"])

    def test_epsilon_cap_enforced(self):
        ledger = PrivacyBudgetLedger(epsilon_cap=0.5, exposure_cap=100)
        ledger.authorize(["alice"], epsilon=0.4)
        with pytest.raises(PrivacyRequirementError):
            ledger.authorize(["alice"], epsilon=0.2)

    def test_atomic_charging(self):
        """If one user is over budget, nobody gets charged."""
        ledger = PrivacyBudgetLedger(epsilon_cap=0.5)
        ledger.authorize(["alice"], epsilon=0.4)
        with pytest.raises(PrivacyRequirementError):
            ledger.authorize(["alice", "bob"], epsilon=0.2)
        assert ledger.account("bob").exposures == 0
        assert ledger.account("bob").epsilon_spent == 0.0

    def test_structural_release_costs_exposure_only(self):
        ledger = PrivacyBudgetLedger(epsilon_cap=1.0, exposure_cap=3)
        ledger.authorize(["alice"], epsilon=0.0)  # smoothing release
        assert ledger.remaining_epsilon("alice") == 1.0
        assert ledger.remaining_exposures("alice") == 2

    def test_summary_ordering(self):
        ledger = PrivacyBudgetLedger(epsilon_cap=2.0)
        ledger.authorize(["alice"], epsilon=0.9)
        ledger.authorize(["bob"], epsilon=0.1)
        summary = ledger.summary()
        assert [b.user for b in summary] == ["alice", "bob"]

    def test_can_release_is_pure(self):
        ledger = PrivacyBudgetLedger()
        assert ledger.can_release(["alice"], epsilon=0.5)
        assert ledger.account("alice").exposures == 0
