"""Unit tests for the home-identification attack."""

import pytest

from repro.privacy.attacks import (
    HomeIdentificationAttack,
    home_identification_rate,
)
from repro.privacy.mechanisms import (
    GeoIndistinguishabilityMechanism,
    KAnonymityCloakingMechanism,
    SpeedSmoothingMechanism,
)


@pytest.fixture(scope="module")
def true_homes(medium_population):
    return {u: t.home for u, t in medium_population.truth.users.items()}


class TestOnRawData:
    def test_finds_every_home(self, medium_population, true_homes):
        attack = HomeIdentificationAttack()
        guesses = attack.run(medium_population.dataset)
        assert home_identification_rate(guesses, true_homes) == 1.0

    def test_night_fixes_counted(self, medium_population):
        attack = HomeIdentificationAttack()
        guess = attack.guess_home(next(iter(medium_population.dataset)))
        # 8 h of night at 2-minute sampling over 6 days ~ 1400 fixes.
        assert guess.night_fixes > 500

    def test_no_night_data_abstains(self):
        from tests.conftest import make_trajectory

        attack = HomeIdentificationAttack()
        # All fixes at noon.
        daytime = make_trajectory(times=[43200.0, 43260.0, 43320.0])
        guess = attack.guess_home(daytime)
        assert guess.location is None
        assert guess.night_fixes == 0


class TestUnderProtection:
    def test_geo_ind_does_not_stop_home_id(self, medium_population, true_homes):
        protected = GeoIndistinguishabilityMechanism(0.01).protect(
            medium_population.dataset, seed=2
        )
        guesses = HomeIdentificationAttack().run(protected)
        # Night fixes cluster around home; their modal cell centroid
        # still lands nearby despite 200 m mean noise.
        assert home_identification_rate(guesses, true_homes) >= 0.6

    def test_k_anonymity_blocks_home_id(self, medium_population, true_homes):
        protected = KAnonymityCloakingMechanism(k=4, base_cell_m=250.0).protect(
            medium_population.dataset, seed=2
        )
        guesses = HomeIdentificationAttack().run(protected)
        assert home_identification_rate(guesses, true_homes) <= 0.4

    def test_smoothing_reduces_home_id(self, medium_population, true_homes):
        raw_rate = home_identification_rate(
            HomeIdentificationAttack().run(medium_population.dataset), true_homes
        )
        protected = SpeedSmoothingMechanism(250.0).protect(
            medium_population.dataset, seed=2
        )
        smoothed_rate = home_identification_rate(
            HomeIdentificationAttack().run(protected), true_homes
        )
        assert smoothed_rate < raw_rate


class TestRateMetric:
    def test_empty_truth(self):
        assert home_identification_rate({}, {}) == 0.0

    def test_missing_guess_counts_as_miss(self, true_homes):
        assert home_identification_rate({}, true_homes) == 0.0
