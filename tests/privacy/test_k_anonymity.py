"""Unit tests for k-anonymity cloaking."""

import numpy as np
import pytest

from repro.errors import MechanismError
from repro.privacy import PoiAttack, poi_recall
from repro.privacy.mechanisms import KAnonymityCloakingMechanism
from repro.units import HOUR


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [{"k": 1}, {"base_cell_m": 0.0}, {"max_levels": 0}],
    )
    def test_invalid_params(self, kwargs):
        with pytest.raises(MechanismError):
            KAnonymityCloakingMechanism(**kwargs)

    def test_standalone_trajectory_rejected(self, medium_population):
        mechanism = KAnonymityCloakingMechanism(k=3)
        trajectory = next(iter(medium_population.dataset))
        with pytest.raises(MechanismError):
            mechanism.protect_trajectory(trajectory, np.random.default_rng(1))


class TestAnonymityGuarantee:
    def test_every_published_region_has_k_users(self, medium_population):
        """Core property: each published position is a region centre that
        at least k distinct users of the raw dataset visit."""
        k = 4
        mechanism = KAnonymityCloakingMechanism(k=k, base_cell_m=250.0)
        protected = mechanism.protect(medium_population.dataset, seed=1)

        # Rebuild the per-level visitor index the mechanism used.
        from repro.geo.grid import SpatialGrid

        bbox = medium_population.dataset.bounding_box.expanded(0.01)
        grids = [SpatialGrid(bbox, 250.0 * (2**level)) for level in range(6)]
        visitor_index = []
        for grid in grids:
            visitors: dict[tuple[int, int], set[str]] = {}
            for user, record in medium_population.dataset.all_records():
                visitors.setdefault(grid.cell_of(record.point), set()).add(user)
            visitor_index.append(visitors)

        centres_checked = 0
        for _, record in protected.all_records():
            # The published point is the centre of SOME level's cell; at
            # that level the cell must hold >= k users.
            for grid, visitors in zip(grids, visitor_index):
                cell = grid.cell_of(record.point)
                centre = grid.center_of(cell)
                from repro.geo.distance import haversine_m

                if haversine_m(centre, record.point) < 1.0:
                    assert len(visitors.get(cell, set())) >= k
                    centres_checked += 1
                    break
        assert centres_checked > protected.n_records * 0.95

    def test_positions_are_generalized(self, medium_population):
        mechanism = KAnonymityCloakingMechanism(k=4, base_cell_m=250.0)
        protected = mechanism.protect(medium_population.dataset, seed=1)
        distinct = {
            (round(r.lat, 6), round(r.lon, 6)) for _, r in protected.all_records()
        }
        raw_distinct = {
            (round(r.lat, 6), round(r.lon, 6))
            for _, r in medium_population.dataset.all_records()
        }
        assert len(distinct) < len(raw_distinct) / 10


class TestPrivacyUtility:
    def test_hides_low_density_homes(self, medium_population):
        """Homes are residential (low shared density), so they coarsen
        hard and the POI attack loses them."""
        mechanism = KAnonymityCloakingMechanism(k=4, base_cell_m=250.0)
        protected = mechanism.protect(medium_population.dataset, seed=1)
        found = PoiAttack(denoise_window=9).run(protected)
        recalls = [
            poi_recall(
                medium_population.truth.pois_of(u, min_total_dwell=2 * HOUR),
                found.get(u, []),
                radius_m=250.0,
            )
            for u in protected.users
        ]
        assert sum(recalls) / len(recalls) <= 0.35

    def test_larger_k_more_generalization(self, medium_population):
        loose = KAnonymityCloakingMechanism(k=2, base_cell_m=250.0).protect(
            medium_population.dataset, seed=1
        )
        strict = KAnonymityCloakingMechanism(k=8, base_cell_m=250.0).protect(
            medium_population.dataset, seed=1
        )

        def distinct_positions(dataset):
            return len(
                {(round(r.lat, 6), round(r.lon, 6)) for _, r in dataset.all_records()}
            )

        assert distinct_positions(strict) <= distinct_positions(loose)

    def test_most_records_survive(self, medium_population):
        mechanism = KAnonymityCloakingMechanism(k=4, base_cell_m=250.0)
        protected = mechanism.protect(medium_population.dataset, seed=1)
        assert protected.n_records >= medium_population.dataset.n_records * 0.8
