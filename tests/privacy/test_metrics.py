"""Unit tests for privacy metrics."""

import pytest

from repro.geo.point import GeoPoint
from repro.privacy.mechanisms import GeoIndistinguishabilityMechanism, IdentityMechanism
from repro.privacy.metrics import (
    dataset_distortion_m,
    mean_spatial_distortion_m,
    poi_f1,
    poi_precision,
    poi_recall,
    reidentification_rate,
    suppression_rate,
)
from repro.privacy.pois import Poi
from tests.conftest import make_trajectory

A = GeoPoint(44.80, -0.60)
B = GeoPoint(44.84, -0.56)
NEAR_A = GeoPoint(44.8005, -0.6005)  # ~70 m from A
FAR = GeoPoint(44.90, -0.40)


def poi(center: GeoPoint) -> Poi:
    return Poi(center=center, total_dwell=3600.0, n_visits=1)


class TestPoiRecall:
    def test_perfect(self):
        assert poi_recall([A, B], [poi(A), poi(B)], radius_m=10.0) == 1.0

    def test_partial(self):
        assert poi_recall([A, B], [poi(A)], radius_m=10.0) == 0.5

    def test_radius_matters(self):
        assert poi_recall([A], [poi(NEAR_A)], radius_m=10.0) == 0.0
        assert poi_recall([A], [poi(NEAR_A)], radius_m=200.0) == 1.0

    def test_empty_truth(self):
        assert poi_recall([], [poi(A)]) == 0.0

    def test_accepts_geopoints(self):
        assert poi_recall([A], [A], radius_m=10.0) == 1.0


class TestPoiPrecision:
    def test_all_matched(self):
        assert poi_precision([A, B], [poi(A)], radius_m=10.0) == 1.0

    def test_false_positives(self):
        assert poi_precision([A], [poi(A), poi(FAR)], radius_m=10.0) == 0.5

    def test_empty_found(self):
        assert poi_precision([A], [], radius_m=10.0) == 0.0


class TestPoiF1:
    def test_harmonic_mean(self):
        f1 = poi_f1([A, B], [poi(A), poi(FAR)], radius_m=10.0)
        assert f1 == pytest.approx(0.5)

    def test_zero_when_nothing_matches(self):
        assert poi_f1([A], [poi(FAR)], radius_m=10.0) == 0.0


class TestReidentificationRate:
    def test_all_correct(self):
        secret = {"p1": "alice", "p2": "bob"}
        assert reidentification_rate(secret, {"p1": "alice", "p2": "bob"}) == 1.0

    def test_abstention_counts_as_miss(self):
        secret = {"p1": "alice", "p2": "bob"}
        assert reidentification_rate(secret, {"p1": "alice", "p2": None}) == 0.5

    def test_missing_guess_counts_as_miss(self):
        secret = {"p1": "alice", "p2": "bob"}
        assert reidentification_rate(secret, {"p1": "alice"}) == 0.5

    def test_empty_secret(self):
        assert reidentification_rate({}, {}) == 0.0


class TestSpatialDistortion:
    def test_identity_zero(self):
        trajectory = make_trajectory()
        assert mean_spatial_distortion_m(trajectory, trajectory) == pytest.approx(0.0, abs=0.5)

    def test_constant_shift_measured(self):
        trajectory = make_trajectory()
        shifted = trajectory.map_points(lambda r: GeoPoint(r.lat + 0.001, r.lon))
        distortion = mean_spatial_distortion_m(trajectory, shifted)
        assert distortion == pytest.approx(111.2, rel=0.05)

    def test_disjoint_spans_infinite(self):
        raw = make_trajectory(times=[0.0, 60.0, 120.0])
        late = make_trajectory(times=[1000.0, 1060.0, 1120.0])
        assert mean_spatial_distortion_m(raw, late) == float("inf")


class TestDatasetLevel:
    def test_identity_dataset_distortion(self, small_population):
        protected = IdentityMechanism().protect(small_population.dataset)
        assert dataset_distortion_m(small_population.dataset, protected) < 1.0

    def test_noise_increases_distortion(self, small_population):
        noisy = GeoIndistinguishabilityMechanism(epsilon=0.01).protect(
            small_population.dataset, seed=1
        )
        distortion = dataset_distortion_m(small_population.dataset, noisy)
        assert 50.0 < distortion < 2000.0

    def test_suppression_rate(self, small_population):
        protected = IdentityMechanism().protect(small_population.dataset)
        assert suppression_rate(small_population.dataset, protected) == 0.0
        empty = small_population.dataset.map_trajectories(lambda t: None)
        assert suppression_rate(small_population.dataset, empty) == 1.0
