"""The secure-aggregation session: cohorts, dropouts, protocol selection."""

from __future__ import annotations

import random

import pytest

from repro.errors import ProtocolError
from repro.privacy.secure_aggregation import (
    ParticipantProfile,
    SecureAggregationPolicy,
    SecureAggregationSession,
    histogram_components,
)
from repro.simulation import FaultInjector, Simulator

#: Small keys keep the tests fast; correctness is key-size independent.
FAST = dict(key_bits=128)


def profiles(n: int, battery=lambda i: 0.9) -> list[ParticipantProfile]:
    return [
        ParticipantProfile(f"dev-{i:02d}", battery=battery(i)) for i in range(n)
    ]


def contributions(n: int, width: int = 1) -> dict[str, list[float]]:
    rng = random.Random(5)
    return {
        f"dev-{i:02d}": [round(rng.uniform(-5.0, 5.0), 3) for _ in range(width)]
        for i in range(n)
    }


def expected_sums(contrib, component: int, exclude=()) -> float:
    return sum(v[component] for pid, v in contrib.items() if pid not in exclude)


class TestProtocolSelection:
    def test_forced_protocols(self):
        for protocol in ("paillier", "masking"):
            policy = SecureAggregationPolicy(protocol=protocol, **FAST)
            session = SecureAggregationSession("t", profiles(4), policy=policy)
            assert set(session.protocol_of.values()) == {protocol}

    def test_auto_routes_weak_batteries_to_masking(self):
        policy = SecureAggregationPolicy(protocol="auto", paillier_battery_floor=0.5, **FAST)
        session = SecureAggregationSession(
            "t", profiles(6, battery=lambda i: 0.2 if i < 2 else 0.9), policy=policy
        )
        assert len(session.masking_cohort) == 2
        assert len(session.paillier_cohort) == 4

    def test_auto_routes_non_paillier_devices_to_masking(self):
        members = profiles(3) + [
            ParticipantProfile("weak-a", supports_paillier=False),
            ParticipantProfile("weak-b", supports_paillier=False),
        ]
        session = SecureAggregationSession("t", members)
        assert session.masking_cohort == ("weak-a", "weak-b")

    def test_lone_low_battery_device_falls_back_to_paillier(self):
        # Battery preference is soft: a lone weak-battery device has
        # nobody to pairwise-mask with and runs Paillier instead.
        members = profiles(3) + [ParticipantProfile("tired", battery=0.05)]
        session = SecureAggregationSession("t", members, policy=SecureAggregationPolicy(**FAST))
        assert session.masking_cohort == ()
        assert "tired" in session.paillier_cohort

    def test_lone_incapable_device_is_rejected_not_forced(self):
        # The capability bit is hard: a device that cannot run Paillier
        # must never be silently reassigned to it.
        members = profiles(3) + [ParticipantProfile("weak", supports_paillier=False)]
        with pytest.raises(ProtocolError, match="cannot run Paillier"):
            SecureAggregationSession("t", members, policy=SecureAggregationPolicy(**FAST))

    def test_forced_masking_needs_two_participants(self):
        with pytest.raises(ProtocolError):
            SecureAggregationSession(
                "t", profiles(1), policy=SecureAggregationPolicy(protocol="masking")
            )

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ProtocolError):
            SecureAggregationPolicy(protocol="rot13")


class TestSessionSums:
    @pytest.mark.parametrize("protocol", ["paillier", "masking", "auto"])
    def test_sums_match_plaintext(self, protocol):
        policy = SecureAggregationPolicy(protocol=protocol, **FAST)
        n, width = 8, 3
        contrib = contributions(n, width)
        session = SecureAggregationSession(
            "t",
            profiles(n, battery=lambda i: 0.1 if i % 2 else 0.9),
            components=("a", "b", "c"),
            policy=policy,
            rng=random.Random(3),
        )
        result = session.run(contrib)
        assert result.contributors == n
        assert result.dropped == ()
        for index, label in enumerate(("a", "b", "c")):
            assert result.sum(label) == pytest.approx(
                expected_sums(contrib, index), abs=1e-6
            )

    def test_mixed_cohorts_fold_into_one_result(self):
        policy = SecureAggregationPolicy(paillier_battery_floor=0.5, **FAST)
        contrib = contributions(10)
        session = SecureAggregationSession(
            "t",
            profiles(10, battery=lambda i: 0.2 if i < 4 else 0.9),
            policy=policy,
            rng=random.Random(4),
        )
        result = session.run(contrib)
        assert result.protocol_split == {"paillier": 6, "masking": 4}
        assert result.sum("value") == pytest.approx(expected_sums(contrib, 0), abs=1e-6)

    def test_session_is_one_shot(self):
        session = SecureAggregationSession(
            "t", profiles(3), policy=SecureAggregationPolicy(**FAST)
        )
        session.run(contributions(3))
        with pytest.raises(ProtocolError):
            session.run(contributions(3))

    def test_missing_contribution_rejected(self):
        session = SecureAggregationSession(
            "t", profiles(3), policy=SecureAggregationPolicy(**FAST)
        )
        contrib = contributions(3)
        del contrib["dev-01"]
        with pytest.raises(ProtocolError):
            session.run(contrib)

    def test_key_headroom_guard(self):
        # A 10^16 contribution cannot fit a 64-bit key's per-device
        # headroom once split across the cohort.
        session = SecureAggregationSession(
            "t",
            profiles(2),
            policy=SecureAggregationPolicy(protocol="paillier", key_bits=64),
        )
        with pytest.raises(ProtocolError, match="headroom"):
            session.run({"dev-00": [1e16], "dev-01": [1.0]})


class TestDropouts:
    def test_masking_dropouts_recovered_via_shamir(self):
        policy = SecureAggregationPolicy(protocol="masking", dropout_threshold=0.5)
        n = 8
        contrib = contributions(n)
        session = SecureAggregationSession(
            "t", profiles(n), policy=policy, rng=random.Random(6)
        )
        session.setup()
        down = {"dev-02", "dev-05"}
        result = session.run(contrib, down=down)
        assert result.dropped == ("dev-02", "dev-05")
        assert result.contributors == n - 2
        assert result.sum("value") == pytest.approx(
            expected_sums(contrib, 0, exclude=down), abs=1e-6
        )

    def test_fault_injector_kills_devices_mid_session(self):
        # Setup happens while everyone is up; the outage fires between
        # dealing and collection — the definition of "mid-session".
        sim = Simulator()
        faults = FaultInjector(sim)
        policy = SecureAggregationPolicy(dropout_threshold=0.5, **FAST)
        n = 6
        contrib = contributions(n)
        session = SecureAggregationSession(
            "t",
            profiles(n, battery=lambda i: 0.1 if i % 2 else 0.9),
            policy=policy,
            rng=random.Random(7),
            faults=faults,
        )
        session.setup()
        faults.schedule_outage("device:dev-01", at=10.0)  # masking cohort
        faults.schedule_outage("device:dev-02", at=10.0)  # paillier cohort
        sim.run()
        result = session.run(contrib)
        assert result.dropped == ("dev-01", "dev-02")
        assert result.sum("value") == pytest.approx(
            expected_sums(contrib, 0, exclude={"dev-01", "dev-02"}), abs=1e-6
        )

    def test_non_resilient_masking_aborts_on_dropout(self):
        policy = SecureAggregationPolicy(protocol="masking", resilient=False)
        session = SecureAggregationSession("t", profiles(4), policy=policy)
        with pytest.raises(ProtocolError, match="non-resilient"):
            session.run(contributions(4), down={"dev-00"})

    def test_non_resilient_masking_aborts_even_when_whole_cohort_drops(self):
        # Regression: the abort must fire for a fully-dropped cohort too,
        # not silently report zeros for the masking components.
        policy = SecureAggregationPolicy(protocol="masking", resilient=False)
        session = SecureAggregationSession("t", profiles(3), policy=policy)
        with pytest.raises(ProtocolError, match="non-resilient"):
            session.run(contributions(3), down={"dev-00", "dev-01", "dev-02"})

    def test_resilient_whole_cohort_dropout_contributes_nothing(self):
        # Mixed cohorts: every masking member drops, the Paillier side
        # still sums — masking contributes 0 rather than garbage.
        policy = SecureAggregationPolicy(paillier_battery_floor=0.5, **FAST)
        contrib = contributions(6)
        session = SecureAggregationSession(
            "t",
            profiles(6, battery=lambda i: 0.2 if i < 2 else 0.9),
            policy=policy,
            rng=random.Random(9),
        )
        down = {"dev-00", "dev-01"}  # the entire masking cohort
        result = session.run(contrib, down=down)
        assert result.sum("value") == pytest.approx(
            expected_sums(contrib, 0, exclude=down), abs=1e-6
        )

    def test_too_many_dropouts_break_recovery(self):
        # Below the Shamir threshold of survivors the seeds cannot be
        # reconstructed — the protocol fails loudly, not wrongly.
        policy = SecureAggregationPolicy(protocol="masking", dropout_threshold=1.0)
        n = 4
        session = SecureAggregationSession(
            "t", profiles(n), policy=policy, rng=random.Random(8)
        )
        with pytest.raises(ProtocolError):
            session.run(contributions(n), down={"dev-00", "dev-01", "dev-02"})


class TestHistogramComponents:
    def test_labels(self):
        labels = histogram_components([0.0, 0.5, 1.0])
        assert labels == ("bin[0,0.5)", "bin[0.5,1]")

    def test_bad_edges(self):
        with pytest.raises(ProtocolError):
            histogram_components([1.0])
        with pytest.raises(ProtocolError):
            histogram_components([0.0, 0.0, 1.0])
