"""Unit tests for the POI and re-identification attacks."""

import pytest

from repro.mobility.dataset import MobilityDataset
from repro.privacy.attacks import PoiAttack, ReidentificationAttack
from repro.privacy.mechanisms import (
    GeoIndistinguishabilityMechanism,
    IdentityMechanism,
    SpeedSmoothingMechanism,
)
from repro.privacy.metrics import poi_recall, reidentification_rate
from repro.units import DAY, HOUR


class TestPoiAttack:
    def test_finds_true_pois_in_raw_data(self, medium_population):
        attack = PoiAttack()
        found = attack.run(medium_population.dataset)
        for user in medium_population.dataset.users:
            truth = medium_population.truth.pois_of(user, min_total_dwell=2 * HOUR)
            assert poi_recall(truth, found[user], radius_m=250.0) >= 0.8

    def test_max_pois_cap(self, medium_population):
        attack = PoiAttack(max_pois=2)
        found = attack.run(medium_population.dataset)
        assert all(len(pois) <= 2 for pois in found.values())

    def test_uncapped(self, medium_population):
        attack = PoiAttack(max_pois=None)
        found = attack.run(medium_population.dataset)
        assert any(len(pois) >= 2 for pois in found.values())

    def test_denoising_recovers_perturbed_pois(self, medium_population):
        protected = GeoIndistinguishabilityMechanism(epsilon=0.01).protect(
            medium_population.dataset, seed=2
        )
        naive = PoiAttack(denoise_window=1).run(protected)
        smart = PoiAttack(denoise_window=9).run(protected)

        def mean_recall(found):
            recalls = [
                poi_recall(
                    medium_population.truth.pois_of(u, min_total_dwell=2 * HOUR),
                    found[u],
                    radius_m=250.0,
                )
                for u in medium_population.dataset.users
            ]
            return sum(recalls) / len(recalls)

        assert mean_recall(smart) > mean_recall(naive)
        assert mean_recall(smart) >= 0.6  # the paper's headline number

    def test_run_trajectory_single_user(self, medium_population):
        attack = PoiAttack()
        user = medium_population.dataset.users[0]
        pois = attack.run_trajectory(medium_population.dataset.get(user))
        assert pois  # home/work must be found


class TestReidentificationAttack:
    @pytest.fixture(scope="class")
    def split(self, medium_population):
        dataset = medium_population.dataset
        half = 3 * DAY
        return dataset.slice_time(0, half), dataset.slice_time(half, 6 * DAY)

    def test_requires_fit(self, split):
        _, target = split
        attack = ReidentificationAttack()
        with pytest.raises(RuntimeError):
            attack.link(target)

    def test_links_unprotected_pseudonyms(self, split):
        background, target = split
        attack = ReidentificationAttack(denoise_window=9).fit(background)
        pseudo, secret = target.pseudonymized()
        results = attack.link(pseudo)
        guesses = {p: r.guessed_user for p, r in results.items()}
        assert reidentification_rate(secret, guesses) >= 0.8

    def test_smoothing_reduces_linkage(self, split):
        background, target = split
        attack = ReidentificationAttack(denoise_window=9).fit(background)

        def rate(dataset: MobilityDataset) -> float:
            pseudo, secret = dataset.pseudonymized()
            guesses = {p: r.guessed_user for p, r in attack.link(pseudo).items()}
            return reidentification_rate(secret, guesses)

        raw_rate = rate(IdentityMechanism().protect(target))
        smoothed_rate = rate(SpeedSmoothingMechanism(100.0).protect(target, seed=3))
        assert smoothed_rate < raw_rate

    def test_abstains_on_unmatchable_profiles(self, split):
        background, target = split
        attack = ReidentificationAttack(
            denoise_window=9, max_match_distance_m=0.0
        ).fit(background)
        pseudo, _ = target.pseudonymized()
        results = attack.link(pseudo)
        # A zero gate can never be met (profile distances are positive).
        assert all(r.guessed_user is None for r in results.values())

    def test_known_users_after_fit(self, split):
        background, _ = split
        attack = ReidentificationAttack().fit(background)
        assert set(attack.known_users) <= set(background.users)
        assert len(attack.known_users) >= len(background.users) - 1
