"""SLO burn-rate evaluation: pluggable SLIs, multi-window rules, alerts."""

from __future__ import annotations

import pytest

from repro import obs
from repro.errors import ObsError
from repro.obs import (
    BurnRateRule,
    MetricsScraper,
    SLODefinition,
    SLOTracker,
    TimeSeriesStore,
    availability_sli,
    freshness_sli,
    latency_sli,
    series_id,
)


def counters(store, points):
    """Write aligned good/total counter frames: (t, good, total)."""
    for t, good, total in points:
        store.append(
            t, {series_id("good_total"): good, series_id("all_total"): total}
        )


def make_slo(rules=None, objective=0.9):
    return SLODefinition(
        name="avail",
        objective=objective,
        probe=availability_sli("good_total", "all_total"),
        rules=rules or (BurnRateRule(window=10.0, factor=1.0),),
    )


class TestDefinitions:
    def test_objective_must_be_a_ratio(self):
        with pytest.raises(ObsError, match="objective"):
            make_slo(objective=1.0)
        with pytest.raises(ObsError, match="objective"):
            make_slo(objective=0.0)

    def test_rules_required(self):
        with pytest.raises(ObsError, match="burn rule"):
            SLODefinition(
                name="avail",
                objective=0.9,
                probe=availability_sli("good_total", "all_total"),
                rules=(),
            )

    def test_burn_rate_math(self):
        """burn = (1 - good_ratio) / (1 - objective)."""
        store = TimeSeriesStore(capacity=16)
        counters(store, [(1.0, 0, 0), (10.0, 80, 100)])
        slo = make_slo(objective=0.9)  # 10% error budget
        burns = slo.burn_rates(store, 10.0)
        # 20% bad on a 10% budget: burning 2x.
        assert burns == [pytest.approx(2.0)]


class TestTracker:
    def test_flips_to_burning_and_back(self):
        store = TimeSeriesStore(capacity=64)
        tracker = SLOTracker(store, [make_slo()])
        # Healthy traffic.
        counters(store, [(1.0, 0, 0), (5.0, 100, 100)])
        assert tracker.evaluate(5.0) == []
        assert not tracker.status("avail").burning
        # Degradation: half the new traffic fails.
        counters(store, [(10.0, 150, 200)])
        transitions = tracker.evaluate(10.0)
        assert [a.state for a in transitions] == ["burning"]
        assert tracker.status("avail").burning
        # Recovery: clean traffic pushes the window's ratio back up
        # (two frames, so the window holds a measurable delta).
        counters(store, [(16.0, 650, 700), (25.0, 1150, 1200)])
        transitions = tracker.evaluate(25.0)
        assert [a.state for a in transitions] == ["ok"]
        assert not tracker.status("avail").burning
        assert tracker.status("avail").transitions == 2

    def test_transition_alerts_are_sequenced_and_logged(self):
        store = TimeSeriesStore(capacity=64)
        tracker = SLOTracker(store, [make_slo()])
        seen = []
        tracker.on_transition(seen.append)
        counters(
            store,
            [(1.0, 0, 0), (5.0, 50, 100), (12.0, 550, 600), (20.0, 1050, 1100)],
        )
        tracker.evaluate(5.0)
        tracker.evaluate(20.0)
        assert [a.seq for a in seen] == [1, 2]
        assert tracker.alerts.total == 2
        assert [a.state for a in tracker.alerts.alerts()] == ["burning", "ok"]

    def test_no_data_keeps_state(self):
        """A window with no traffic is not evidence of recovery."""
        store = TimeSeriesStore(capacity=64)
        tracker = SLOTracker(store, [make_slo()])
        counters(store, [(1.0, 0, 0), (5.0, 0, 100)])
        tracker.evaluate(5.0)
        assert tracker.status("avail").burning
        # Far in the future the 10s window holds no samples at all:
        # the probe returns None and the state must not flip.
        tracker.evaluate(500.0)
        assert tracker.status("avail").burning

    def test_multi_window_needs_every_rule_burning(self):
        rules = (
            BurnRateRule(window=100.0, factor=1.0),
            BurnRateRule(window=10.0, factor=1.0),
        )
        store = TimeSeriesStore(capacity=64)
        tracker = SLOTracker(store, [make_slo(rules=rules)])
        # Old damage inside the long window only: the short window is
        # clean, so the SLO is recovering, not burning.
        counters(
            store,
            [(1.0, 0, 0), (50.0, 50, 100), (95.0, 150, 200), (100.0, 250, 300)],
        )
        tracker.evaluate(100.0)
        status = tracker.status("avail")
        assert not status.burning
        long_burn, short_burn = status.burn_rates
        assert long_burn >= 1.0
        assert short_burn < 1.0

    def test_duplicate_definition_rejected(self):
        store = TimeSeriesStore(capacity=8)
        tracker = SLOTracker(store, [make_slo()])
        with pytest.raises(ObsError, match="duplicate"):
            tracker.add(make_slo())


class TestSLIProbes:
    def test_latency_sli_from_scraped_buckets(self):
        registry = obs.metrics_registry()
        hist = registry.histogram("repro_lat_seconds", "x", ("instance",)).labels(
            instance="a"
        )
        scraper = MetricsScraper(registry=registry, capacity=16)
        scraper.scrape(0.5)
        for _ in range(90):
            hist.observe(0.0002)
        for _ in range(10):
            hist.observe(0.08)
        scraper.scrape(10.0)
        probe = latency_sli("repro_lat_seconds", threshold=0.001)
        # 90 of 100 under the threshold.
        assert probe(scraper.store, 0.0, 10.0) == pytest.approx(0.9)

    def test_latency_sli_sums_across_instances(self):
        registry = obs.metrics_registry()
        fam = registry.histogram("repro_lat_seconds", "x", ("instance",))
        scraper = MetricsScraper(registry=registry, capacity=16)
        fam.labels(instance="a")  # both children exist before baseline
        fam.labels(instance="b")
        scraper.scrape(0.5)
        for _ in range(50):
            fam.labels(instance="a").observe(0.0002)
        for _ in range(50):
            fam.labels(instance="b").observe(0.08)
        scraper.scrape(10.0)
        probe = latency_sli("repro_lat_seconds", threshold=0.001)
        assert probe(scraper.store, 0.0, 10.0) == pytest.approx(0.5)

    def test_freshness_sli_measures_watermark_age(self):
        store = TimeSeriesStore(capacity=16)
        # Watermark tracks the clock (fresh), then stalls (stale).
        for t, wm in [(10.0, 8.0), (20.0, 18.0), (30.0, 18.0), (40.0, 18.0)]:
            store.record("wm_seconds", t, wm)
        probe = freshness_sli("wm_seconds", max_age=5.0)
        assert probe(store, 0.0, 40.0) == pytest.approx(0.5)

    def test_freshness_sli_skips_nonfinite_watermarks(self):
        """An engine that never saw a record reports -inf: not stale."""
        store = TimeSeriesStore(capacity=16)
        store.record("wm_seconds", 10.0, float("-inf"))
        probe = freshness_sli("wm_seconds", max_age=5.0)
        assert probe(store, 0.0, 20.0) is None

    def test_availability_sli_no_traffic_is_none(self):
        store = TimeSeriesStore(capacity=16)
        counters(store, [(1.0, 5, 10), (2.0, 5, 10)])
        probe = availability_sli("good_total", "all_total")
        assert probe(store, 0.0, 2.0) is None  # no *new* traffic
