"""Unit tests of the metrics registry: instruments, reading, exposition."""

from __future__ import annotations

import pytest

from repro import obs
from repro.errors import ObsError
from repro.obs.registry import DEFAULT_BUCKETS, MetricsRegistry


class TestCounter:
    def test_inc_accumulates(self):
        registry = MetricsRegistry()
        child = registry.counter("repro_test_total", labelnames=("instance",)).labels(
            instance="a"
        )
        child.inc()
        child.inc(4)
        assert child.value == 5

    def test_negative_increment_rejected(self):
        registry = MetricsRegistry()
        child = registry.counter("repro_test_total").labels()
        with pytest.raises(ObsError):
            child.inc(-1)

    def test_disabled_registry_is_a_noop(self):
        registry = MetricsRegistry(enabled=False)
        child = registry.counter("repro_test_total").labels()
        child.inc(100)
        assert child.value == 0

    def test_live_toggle(self):
        # Children resolved before the flip obey the flip — the flag is
        # checked per call, not captured at wiring time.
        registry = MetricsRegistry(enabled=True)
        child = registry.counter("repro_test_total").labels()
        child.inc()
        registry.enabled = False
        child.inc()
        registry.enabled = True
        child.inc()
        assert child.value == 2


class TestGauge:
    def test_set_inc_dec(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("repro_level").labels()
        gauge.set(10)
        gauge.inc(2)
        gauge.dec(5)
        assert gauge.value == 7

    def test_callback_backed(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("repro_level").labels()
        state = {"n": 3}
        gauge.set_function(lambda: state["n"])
        assert gauge.value == 3
        state["n"] = 9
        assert gauge.value == 9


class TestHistogram:
    def test_counts_sum_mean(self):
        registry = MetricsRegistry()
        hist = registry.histogram("repro_lat_seconds").labels()
        for value in (0.001, 0.002, 0.003):
            hist.observe(value)
        assert hist.count == 3
        assert hist.sum == pytest.approx(0.006)
        assert hist.mean == pytest.approx(0.002)

    def test_quantiles_bucket_interpolated(self):
        registry = MetricsRegistry()
        hist = registry.histogram(
            "repro_lat_seconds", buckets=(1.0, 2.0, 4.0)
        ).labels()
        for _ in range(100):
            hist.observe(1.5)  # all in the (1, 2] bucket
        assert 1.0 <= hist.quantile(0.5) <= 2.0
        assert 1.0 <= hist.quantile(0.99) <= 2.0

    def test_observations_past_last_bucket(self):
        registry = MetricsRegistry()
        hist = registry.histogram("repro_lat_seconds", buckets=(1.0,)).labels()
        hist.observe(50.0)
        assert hist.count == 1
        assert hist.quantile(0.5) == 1.0  # clamped to the last finite edge

    def test_unsorted_buckets_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ObsError):
            registry.histogram("repro_bad_seconds", buckets=(2.0, 1.0))

    def test_default_buckets_cover_hot_path_range(self):
        assert DEFAULT_BUCKETS[0] <= 0.0001
        assert DEFAULT_BUCKETS[-1] >= 10.0
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


class TestRegistration:
    def test_idempotent_for_same_shape(self):
        registry = MetricsRegistry()
        one = registry.counter("repro_test_total", labelnames=("instance",))
        two = registry.counter("repro_test_total", labelnames=("instance",))
        assert one is two

    def test_shape_change_rejected(self):
        registry = MetricsRegistry()
        registry.counter("repro_test_total", labelnames=("instance",))
        with pytest.raises(ObsError):
            registry.gauge("repro_test_total", labelnames=("instance",))
        with pytest.raises(ObsError):
            registry.counter("repro_test_total", labelnames=("other",))

    def test_bad_metric_name_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ObsError):
            registry.counter("repro test total")

    def test_wrong_labels_rejected(self):
        registry = MetricsRegistry()
        family = registry.counter("repro_test_total", labelnames=("instance",))
        with pytest.raises(ObsError):
            family.labels(surface="query")


class TestReading:
    def test_value_and_total(self):
        registry = MetricsRegistry()
        family = registry.counter(
            "repro_test_total", labelnames=("instance", "outcome")
        )
        family.labels(instance="a", outcome="ok").inc(3)
        family.labels(instance="b", outcome="ok").inc(5)
        family.labels(instance="a", outcome="err").inc(1)
        assert registry.value(
            "repro_test_total", {"instance": "a", "outcome": "ok"}
        ) == 3
        assert registry.total("repro_test_total") == 9
        assert registry.total("repro_test_total", outcome="ok") == 8
        assert registry.total("repro_test_total", instance="a") == 4

    def test_absent_metric_reads_zero(self):
        registry = MetricsRegistry()
        assert registry.value("repro_never_registered") == 0.0
        assert registry.total("repro_never_registered") == 0.0

    def test_stage_timings_sorted_by_total(self):
        registry = MetricsRegistry()
        cold = registry.histogram(
            "repro_cold_seconds", labelnames=("instance",)
        ).labels(instance="x")
        hot = registry.histogram(
            "repro_hot_seconds", labelnames=("instance",)
        ).labels(instance="x")
        cold.observe(0.001)
        for _ in range(10):
            hot.observe(0.5)
        rows = registry.stage_timings()
        assert [r.stage.split("{")[0] for r in rows] == [
            "repro_hot_seconds",
            "repro_cold_seconds",
        ]
        assert rows[0].count == 10
        assert rows[0].p99 >= rows[0].p50 > 0
        assert "calls" in rows[0].to_text()

    def test_untouched_histograms_stay_out_of_top(self):
        registry = MetricsRegistry()
        registry.histogram("repro_idle_seconds", labelnames=("instance",)).labels(
            instance="x"
        )
        assert registry.stage_timings() == []


class TestExposition:
    def test_counter_and_gauge_lines(self):
        registry = MetricsRegistry()
        registry.counter(
            "repro_test_total", "Things counted.", ("instance",)
        ).labels(instance="a").inc(2)
        registry.gauge("repro_level").labels().set(1.5)
        text = registry.render_prometheus()
        assert "# HELP repro_test_total Things counted." in text
        assert "# TYPE repro_test_total counter" in text
        assert 'repro_test_total{instance="a"} 2' in text
        assert "repro_level 1.5" in text

    def test_histogram_buckets_cumulative_with_inf(self):
        registry = MetricsRegistry()
        hist = registry.histogram("repro_lat_seconds", buckets=(1.0, 2.0)).labels()
        hist.observe(0.5)
        hist.observe(1.5)
        hist.observe(99.0)
        text = registry.render_prometheus()
        assert 'repro_lat_seconds_bucket{le="1"} 1' in text
        assert 'repro_lat_seconds_bucket{le="2"} 2' in text
        assert 'repro_lat_seconds_bucket{le="+Inf"} 3' in text
        assert "repro_lat_seconds_count 3" in text

    def test_sim_clock_line(self):
        registry = MetricsRegistry(clock=lambda: 123.0)
        assert "repro_sim_time_seconds 123" in registry.render_prometheus()

    def test_process_wide_render_helper(self):
        obs.metrics_registry().counter("repro_helper_total").labels().inc()
        assert "repro_helper_total 1" in obs.render_prometheus()
