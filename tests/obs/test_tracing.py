"""Unit tests of the tracer: spans, sampling, the bounded log."""

from __future__ import annotations

import pytest

from repro.errors import ObsError
from repro.obs.tracing import (
    Span,
    TraceLog,
    Tracer,
    record_paths,
    trace_tree,
    traced_keys,
)


class TestTraceLog:
    def test_bounded_drop_oldest(self):
        log = TraceLog(capacity=3)
        for index in range(5):
            log.append(Span(name=f"s{index}", span_id=index))
        assert len(log) == 3
        assert log.total == 5
        assert log.dropped == 2
        assert [s.name for s in log] == ["s2", "s3", "s4"]

    def test_filtering(self):
        log = TraceLog()
        log.append(Span(name="a", span_id=1, trace_id=7))
        log.append(Span(name="b", span_id=2, trace_id=7))
        log.append(Span(name="a", span_id=3, trace_id=8))
        assert len(log.spans(name="a")) == 2
        assert len(log.spans(trace_id=7)) == 2
        assert len(log.spans(name="a", trace_id=8)) == 1
        assert log.trace_ids() == [7, 8]

    def test_invalid_capacity(self):
        with pytest.raises(ObsError):
            TraceLog(capacity=0)


class TestTracer:
    def test_disabled_tracer_emits_nothing(self):
        tracer = Tracer(enabled=False)
        assert tracer.new_trace() is None
        with tracer.span("anything") as handle:
            handle.set(key="value")
            handle.add_records({1: [2.0]})
        assert len(tracer.log) == 0

    def test_span_records_duration_and_attrs(self):
        tracer = Tracer(enabled=True)
        with tracer.span("work", shard=3) as handle:
            handle.set(batch=10)
        (span,) = tracer.log.spans("work")
        assert span.duration >= 0.0
        assert span.attrs == {"shard": 3, "batch": 10}

    def test_nested_spans_get_parents_and_trace(self):
        tracer = Tracer(enabled=True)
        trace_id = tracer.new_trace()
        with tracer.span("outer", trace_id=trace_id):
            with tracer.span("inner"):
                pass
        outer = tracer.log.spans("outer")[0]
        inner = tracer.log.spans("inner")[0]
        assert inner.parent_id == outer.span_id
        assert inner.trace_id == outer.trace_id == trace_id

    def test_systematic_sampling_is_deterministic(self):
        tracer = Tracer(enabled=True, sample_rate=0.25)
        sampled = [tracer.new_trace() is not None for _ in range(100)]
        assert sum(sampled) == 25
        again = Tracer(enabled=True, sample_rate=0.25)
        assert [again.new_trace() is not None for _ in range(100)] == sampled

    def test_zero_sample_rate_traces_nothing(self):
        tracer = Tracer(enabled=True, sample_rate=0.0)
        assert all(tracer.new_trace() is None for _ in range(10))

    def test_invalid_sample_rate(self):
        with pytest.raises(ObsError):
            Tracer(sample_rate=1.5)

    def test_sim_clock_stamped(self):
        tracer = Tracer(enabled=True, clock=lambda: 42.0)
        with tracer.span("work"):
            pass
        assert tracer.log.spans("work")[0].sim_time == 42.0


class _FakeRecord:
    def __init__(self, time, trace_id=None):
        self.time = time
        self.trace_id = trace_id


class TestReconstruction:
    def test_traced_keys_skips_untraced(self):
        batch = [_FakeRecord(1.0, 7), _FakeRecord(2.0), _FakeRecord(3.0, 7)]
        assert traced_keys(batch) == {7: [1.0, 3.0]}

    def test_record_paths_groups_by_stage(self):
        spans = [
            Span(name="ingest.flush", span_id=1, attrs={"records": {7: [1.0, 2.0]}}),
            Span(name="store.append", span_id=2, attrs={"records": {7: [1.0, 2.0]}}),
            Span(name="store.append", span_id=3, attrs={"records": {7: [1.0]}}),
        ]
        paths = record_paths(spans)
        assert set(paths) == {(7, 1.0), (7, 2.0)}
        # Record (7, 1.0) hit store.append twice — a duplicate-delivery
        # signal record_paths must surface, not mask.
        assert len(paths[(7, 1.0)]["store.append"]) == 2
        assert len(paths[(7, 2.0)]["store.append"]) == 1

    def test_trace_tree_depths(self):
        spans = [
            Span(name="root", span_id=1, trace_id=5, start=1.0),
            Span(name="child", span_id=2, trace_id=5, parent_id=1, start=2.0),
            Span(name="grandchild", span_id=3, trace_id=5, parent_id=2, start=3.0),
            Span(name="other-trace", span_id=4, trace_id=6, start=4.0),
            Span(name="orphan", span_id=5, trace_id=5, parent_id=99, start=5.0),
        ]
        rows = trace_tree(spans, trace_id=5)
        assert [(depth, span.name) for depth, span in rows] == [
            (0, "root"),
            (1, "child"),
            (2, "grandchild"),
            (0, "orphan"),
        ]
