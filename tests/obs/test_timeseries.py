"""The TSDB: ring-buffer semantics, the query layer, federation rollup."""

from __future__ import annotations

import pytest

from repro import obs
from repro.errors import ObsError
from repro.obs import MetricsScraper, TimeSeriesStore, series_id
from repro.simulation import Simulator


def fill(store: TimeSeriesStore, points, name="m", labels=None):
    for t, value in points:
        store.record(name, t, value, labels)


class TestRingBuffer:
    def test_append_and_read_back(self):
        store = TimeSeriesStore(capacity=8)
        fill(store, [(1.0, 10.0), (2.0, 20.0), (3.0, 25.0)])
        series = store.series("m")
        assert list(series.t) == [1.0, 2.0, 3.0]
        assert list(series.values) == [10.0, 20.0, 25.0]
        assert series.latest() == (3.0, 25.0)

    def test_frames_must_advance_in_time(self):
        store = TimeSeriesStore(capacity=8)
        store.open_frame(5.0)
        with pytest.raises(ObsError, match="advance in time"):
            store.open_frame(5.0)
        with pytest.raises(ObsError, match="advance in time"):
            store.open_frame(4.0)

    def test_drop_oldest_keeps_newest_frames(self):
        store = TimeSeriesStore(capacity=4)
        fill(store, [(float(t), float(t) * 10) for t in range(1, 8)])
        assert store.n_frames == 4
        series = store.series("m")
        assert list(series.t) == [4.0, 5.0, 6.0, 7.0]
        assert store.frames_evicted == 3

    def test_mid_run_series_backfills_nan_and_reads_clean(self):
        store = TimeSeriesStore(capacity=8)
        store.append(1.0, {series_id("a"): 1.0})
        store.append(2.0, {series_id("a"): 2.0, series_id("b"): 9.0})
        late = store.series("b")
        # 'b' did not exist at t=1; its series holds only live samples.
        assert list(late.t) == [2.0]
        assert list(late.values) == [9.0]

    def test_label_sets_are_distinct_series(self):
        store = TimeSeriesStore(capacity=8)
        fill(store, [(1.0, 1.0)], labels={"instance": "a"})
        fill(store, [(2.0, 5.0)], labels={"instance": "b"})
        assert store.n_series == 2
        assert store.series("m", {"instance": "b"}).latest() == (2.0, 5.0)
        with pytest.raises(ObsError, match="ambiguous"):
            store.series("m")

    def test_eviction_accounting_invariant(self):
        """samples_appended == samples_retained + samples_evicted, always."""
        store = TimeSeriesStore(capacity=4)
        for t in range(1, 20):
            samples = {series_id("a"): float(t)}
            if t % 2:
                samples[series_id("b")] = float(t) * 2  # sparse series
            store.append(float(t), samples)
            assert (
                store.samples_appended
                == store.samples_retained + store.samples_evicted
            )
        assert store.samples_evicted > 0
        assert store.frames_appended == store.frames_evicted + store.n_frames


class TestQueryLayer:
    def test_delta_and_rate_over_window(self):
        store = TimeSeriesStore(capacity=16)
        fill(store, [(float(t), float(t) * 100) for t in range(1, 11)])
        assert store.delta("m") == pytest.approx(900.0)
        assert store.delta("m", window=3.0) == pytest.approx(300.0)
        assert store.rate("m", window=3.0) == pytest.approx(100.0)

    def test_delta_folds_label_sets_like_registry_total(self):
        store = TimeSeriesStore(capacity=16)
        fill(store, [(1.0, 0.0), (2.0, 10.0)], labels={"instance": "a"})
        fill(store, [(3.0, 5.0), (4.0, 11.0)], labels={"instance": "b"})
        assert store.delta("m") == pytest.approx(16.0)
        assert store.delta("m", labels={"instance": "b"}) == pytest.approx(6.0)

    def test_single_sample_window_has_no_delta(self):
        store = TimeSeriesStore(capacity=16)
        fill(store, [(1.0, 5.0)])
        assert store.delta("m") == 0.0
        assert store.rate("m") == 0.0

    def test_windowed_agg(self):
        store = TimeSeriesStore(capacity=16)
        fill(store, [(1.0, 4.0), (2.0, 8.0), (3.0, 6.0)])
        assert store.windowed_agg("m", "mean") == pytest.approx(6.0)
        assert store.windowed_agg("m", "max") == pytest.approx(8.0)
        assert store.windowed_agg("m", "min", window=1.5) == pytest.approx(6.0)
        assert store.windowed_agg("m", "last") == pytest.approx(6.0)
        assert store.windowed_agg("m", "count") == 3.0
        with pytest.raises(ObsError, match="unknown windowed agg"):
            store.windowed_agg("m", "median")

    def test_unknown_series_raises(self):
        store = TimeSeriesStore(capacity=4)
        with pytest.raises(ObsError, match="unknown series"):
            store.delta("nope")

    def test_histogram_quantile_over_time(self):
        """The quantile reads bucket *increases*, not whole-run totals."""
        registry = obs.metrics_registry()
        hist = registry.histogram("repro_q_seconds", "x", ("instance",)).labels(
            instance="a"
        )
        scraper = MetricsScraper(registry=registry, capacity=16)
        scraper.scrape(0.5)  # baseline: deltas only see scraped history
        # Window 1: everything fast.
        for _ in range(100):
            hist.observe(0.0002)
        scraper.scrape(1.0)
        # Window 2: everything slow.
        for _ in range(100):
            hist.observe(0.08)
        scraper.scrape(2.0)
        over_all = scraper.store.histogram_quantile(0.5, "repro_q_seconds")
        recent = scraper.store.histogram_quantile(
            0.5, "repro_q_seconds", window=1.0
        )
        # Over the full history the median straddles both modes; over
        # the last window only the slow mode exists.
        assert recent > 0.05
        assert over_all < recent

    def test_histogram_quantile_validates_q(self):
        store = TimeSeriesStore(capacity=4)
        with pytest.raises(ObsError, match="quantile"):
            store.histogram_quantile(1.5, "m")


class TestScrapedQueries:
    def test_scraper_emits_prometheus_conventional_series(self):
        registry = obs.metrics_registry()
        hist = registry.histogram("repro_h_seconds", "x", ("instance",)).labels(
            instance="a"
        )
        hist.observe(0.002)
        scraper = MetricsScraper(registry=registry, capacity=4)
        scraper.scrape(1.0)
        names = {key[0] for key in scraper.store.keys()}
        assert "repro_h_seconds_bucket" in names
        assert "repro_h_seconds_sum" in names
        assert "repro_h_seconds_count" in names
        count = scraper.store.series("repro_h_seconds_count")
        assert count.latest() == (1.0, 1.0)

    def test_callback_gauges_sample_live_values(self):
        registry = obs.metrics_registry()
        level = {"value": 3.0}
        registry.gauge("repro_level", "x", ("instance",)).labels(
            instance="a"
        ).set_function(lambda: level["value"])
        scraper = MetricsScraper(registry=registry, capacity=4)
        scraper.scrape(1.0)
        level["value"] = 7.0
        scraper.scrape(2.0)
        series = scraper.store.series("repro_level")
        assert list(series.values) == [3.0, 7.0]

    def test_scheduled_scrapes_follow_the_sim_clock(self):
        sim = Simulator()
        registry = obs.metrics_registry()
        counter = registry.counter("repro_c_total", "x", ("instance",)).labels(
            instance="a"
        )
        scraper = MetricsScraper(registry=registry, cadence=10.0, capacity=64)
        scraper.start(sim, until=55.0)
        sim.schedule(32.0, lambda: counter.inc(5))
        sim.run()
        series = scraper.store.series("repro_c_total")
        assert list(series.t) == [10.0, 20.0, 30.0, 40.0, 50.0]
        assert scraper.store.delta("repro_c_total") == 5.0
