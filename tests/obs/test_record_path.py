"""End-to-end record tracing through the live platform.

The acceptance test of the observability tier: drive real uploads
through the Hive gateway, pipeline, store, and stream engine, then
reconstruct every record's journey **from the trace log alone** — no
component counters consulted — and assert exactly-once
pipeline -> store -> window delivery.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.apisense.device import SensorRecord
from repro.apisense.hive import Hive
from repro.apisense.honeycomb import Honeycomb
from repro.apisense.tasks import SensingTask
from repro.simulation import Simulator
from repro.streams import StreamEngine, WindowSpec

WINDOW = 300.0
TASK = "traced"


def make_traced_hive(sim: Simulator) -> Hive:
    hive = Hive(sim, streams=StreamEngine(sim=sim, allowed_lateness=0.0))
    hive.streams.register_view("m5", WindowSpec.tumbling(WINDOW))
    owner = Honeycomb("obs-tests", hive)
    task = SensingTask(
        name=TASK,
        sensors=("gps", "battery"),
        sampling_period=60.0,
        upload_period=WINDOW,
        end=86400.0,
    )
    owner.register_task(task)
    hive.adopt_task(task, owner)
    return hive


def upload(hive: Hive, device: str, times: list[float]) -> int:
    records = [
        SensorRecord(
            device_id=device,
            user=f"user-{device}",
            task=TASK,
            time=t,
            values={"battery": 0.5},
        )
        for t in times
    ]
    return hive.receive_upload(device, f"user-{device}", TASK, records)


class TestRecordPathReconstruction:
    def test_exactly_once_pipeline_store_window_from_spans_alone(self):
        obs.configure(tracing=True, sample_rate=1.0)
        sim = Simulator()
        hive = make_traced_hive(sim)
        expected_keys = set()
        for index, device in enumerate(("dev-a", "dev-b", "dev-c")):
            times = [10.0 + index + 30.0 * k for k in range(4)]
            accepted = upload(hive, device, times)
            assert accepted == 4
            expected_keys.update((index + 1, t) for t in times)
        sim.run()
        hive.pipeline.flush_all()
        hive.streams.finalize()

        paths = obs.record_paths(obs.tracer().log)
        # Every admitted record appears, keyed by (trace_id, time) —
        # nothing extra, nothing missing.
        assert set(paths) == expected_keys
        for key, stages in paths.items():
            seen = {
                stage: len(spans)
                for stage, spans in stages.items()
            }
            assert seen == {
                "ingest.admit": 1,
                "ingest.flush": 1,
                "store.append": 1,
                "stream.window": 1,
            }, f"record {key} was not delivered exactly once: {seen}"

    def test_flush_all_and_timer_flush_trace_identically(self):
        # Two records in one upload: one flushed by the timer, then the
        # campaign-teardown drain flushes nothing extra — the trace log
        # must show single delivery either way.
        obs.configure(tracing=True, sample_rate=1.0)
        sim = Simulator()
        hive = make_traced_hive(sim)
        upload(hive, "dev-a", [10.0, 40.0])
        sim.run()  # timer-driven flush
        hive.pipeline.flush_all()  # teardown drain (already empty)
        hive.streams.finalize()
        paths = obs.record_paths(obs.tracer().log)
        assert set(paths) == {(1, 10.0), (1, 40.0)}
        for stages in paths.values():
            assert len(stages["ingest.flush"]) == 1
            assert len(stages["store.append"]) == 1

    def test_sampling_traces_a_strict_subset(self):
        obs.configure(tracing=True, sample_rate=0.5)
        sim = Simulator()
        hive = make_traced_hive(sim)
        for index in range(8):
            upload(hive, f"dev-{index}", [10.0 + index])
        sim.run()
        hive.pipeline.flush_all()
        hive.streams.finalize()
        paths = obs.record_paths(obs.tracer().log)
        # Systematic sampling at 0.5 traces every other upload.
        assert len(paths) == 4
        admits = obs.tracer().log.spans("ingest.admit")
        assert len(admits) == 4

    def test_tracing_off_leaves_no_spans_and_no_trace_ids(self):
        sim = Simulator()
        hive = make_traced_hive(sim)
        upload(hive, "dev-a", [10.0])
        sim.run()
        hive.pipeline.flush_all()
        assert len(obs.tracer().log) == 0
        batch = hive.store.scan(TASK)
        assert len(batch) == 1

    def test_window_span_carries_window_identity(self):
        obs.configure(tracing=True, sample_rate=1.0)
        sim = Simulator()
        hive = make_traced_hive(sim)
        upload(hive, "dev-a", [10.0, 310.0])  # two tumbling windows
        sim.run()
        hive.pipeline.flush_all()
        hive.streams.finalize()
        windows = obs.tracer().log.spans("stream.window")
        assert len(windows) == 2
        spans_by_start = {s.attrs["start"]: s for s in windows}
        assert set(spans_by_start) == {0.0, 300.0}
        assert spans_by_start[0.0].record_keys() == [(1, 10.0)]
        assert spans_by_start[300.0].record_keys() == [(1, 310.0)]
        for span in windows:
            assert span.attrs["task"] == TASK
            assert span.attrs["view"] == "m5"

    def test_latency_decomposes_per_stage(self):
        obs.configure(tracing=True, sample_rate=1.0)
        sim = Simulator()
        obs.configure(clock=lambda: sim.now)
        hive = make_traced_hive(sim)
        upload(hive, "dev-a", [10.0])
        sim.run()
        hive.pipeline.flush_all()
        hive.streams.finalize()
        (key,) = obs.record_paths(obs.tracer().log)
        stages = obs.record_paths(obs.tracer().log)[key]
        for name in ("ingest.admit", "ingest.flush", "store.append", "stream.window"):
            (span,) = stages[name]
            assert span.duration >= 0.0
            assert span.sim_time is not None
        # The store write is nested inside the flush: its wall-clock
        # share is part of the flush span's, never larger.
        assert stages["store.append"][0].duration <= stages["ingest.flush"][0].duration + 1e-6
