"""Scraper robustness: disabled registries, stalled clocks, eviction.

The satellite contract (mirroring ``test_health_reconciliation``'s
style): every sample the scraper ever wrote is *somewhere* —
``samples_appended == samples_retained + samples_evicted`` — and the
skip paths (registry off, clock stalled) are counted, never silent.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.obs import MetricsScraper, TimeSeriesStore, instance_select
from repro.simulation import Simulator


def make_workload():
    registry = obs.metrics_registry()
    counter = registry.counter("repro_w_total", "x", ("instance",)).labels(
        instance="a"
    )
    hist = registry.histogram("repro_w_seconds", "x", ("instance",)).labels(
        instance="a"
    )
    return registry, counter, hist


class TestDisabledRegistry:
    def test_disabled_registry_scrape_is_a_counted_noop(self):
        registry, counter, _ = make_workload()
        scraper = MetricsScraper(registry=registry, capacity=8)
        counter.inc()
        assert scraper.scrape(1.0) is not None
        registry.enabled = False  # toggled off mid-run
        assert scraper.scrape(2.0) is None
        assert scraper.scrape(3.0) is None
        registry.enabled = True
        assert scraper.scrape(4.0) is not None
        stats = scraper.stats
        assert stats.scrapes == 2
        assert stats.skipped_disabled == 2
        # No frame was written while disabled.
        assert list(scraper.store.series("repro_w_total").t) == [1.0, 4.0]

    def test_disabled_period_never_fabricates_samples(self):
        registry, counter, _ = make_workload()
        scraper = MetricsScraper(registry=registry, capacity=8)
        scraper.scrape(1.0)
        registry.enabled = False
        counter.inc(100)  # a no-op child: disabled counters don't count
        scraper.scrape(2.0)
        registry.enabled = True
        scraper.scrape(3.0)
        store = scraper.store
        assert (
            store.samples_appended
            == store.samples_retained + store.samples_evicted
        )


class TestStalledClock:
    def test_same_timestamp_never_writes_twice(self):
        registry, counter, _ = make_workload()
        scraper = MetricsScraper(registry=registry, capacity=8)
        assert scraper.scrape(5.0) is not None
        counter.inc()
        assert scraper.scrape(5.0) is None  # clock did not advance
        assert scraper.scrape(4.0) is None  # ...or went backwards
        assert scraper.stats.skipped_clock == 2
        series = scraper.store.series("repro_w_total")
        assert list(series.t) == [5.0]

    def test_scheduled_scrapes_with_frozen_clock(self):
        """A periodic event on a clock wired to a constant never dupes."""
        registry, _, _ = make_workload()
        scraper = MetricsScraper(
            registry=registry, cadence=1.0, capacity=8, clock=lambda: 42.0
        )
        for _ in range(5):
            scraper.scrape()
        assert scraper.stats.scrapes == 1
        assert scraper.stats.skipped_clock == 4
        assert scraper.store.n_frames == 1


class TestEvictionAccounting:
    def test_scraped_equals_retained_plus_evicted(self):
        registry, counter, hist = make_workload()
        scraper = MetricsScraper(registry=registry, capacity=4)
        for t in range(1, 25):
            counter.inc()
            hist.observe(0.001 * t)
            scraper.scrape(float(t))
            store = scraper.store
            assert (
                store.samples_appended
                == store.samples_retained + store.samples_evicted
            )
        assert scraper.store.frames_evicted == 20
        assert scraper.store.samples_evicted > 0
        # The scraper's own sample counter reconciles with the store's.
        assert scraper.stats.samples == scraper.store.samples_appended

    def test_eviction_with_series_appearing_mid_run(self):
        """New columns mid-run keep the invariant exact (NaN backfill)."""
        registry, counter, _ = make_workload()
        scraper = MetricsScraper(registry=registry, capacity=3)
        for t in range(1, 5):
            scraper.scrape(float(t))
        # A brand-new labeled child appears after eviction started.
        registry.counter("repro_w_total", "x", ("instance",)).labels(
            instance="late"
        ).inc()
        for t in range(5, 12):
            scraper.scrape(float(t))
        store = scraper.store
        assert (
            store.samples_appended
            == store.samples_retained + store.samples_evicted
        )


class TestReaderCache:
    def test_readers_rebuild_only_on_topology_change(self):
        registry, counter, _ = make_workload()
        scraper = MetricsScraper(registry=registry, capacity=8)
        scraper.scrape(1.0)
        version = scraper._readers_version
        counter.inc(5)
        scraper.scrape(2.0)  # value changed, topology did not
        assert scraper._readers_version == version
        registry.counter("repro_new_total", "x", ("instance",)).labels(
            instance="a"
        )
        scraper.scrape(3.0)
        assert scraper._readers_version != version
        assert scraper.store.series("repro_new_total").latest() == (3.0, 0.0)

    def test_select_filter_limits_the_series(self):
        registry, _, _ = make_workload()
        registry.counter("repro_w_total", "x", ("instance",)).labels(
            instance="b"
        ).inc()
        scraper = MetricsScraper(
            registry=registry,
            capacity=8,
            select=instance_select({"a"}, include_unlabelled=False),
        )
        scraper.scrape(1.0)
        keys = scraper.store.keys()
        assert keys  # instance 'a' series are present
        assert all(dict(key[1]).get("instance") == "a" for key in keys)


class TestSimClockIntegration:
    def test_bounded_periodic_scrape_lets_the_sim_drain(self):
        sim = Simulator()
        registry, counter, _ = make_workload()
        scraper = MetricsScraper(registry=registry, cadence=5.0, capacity=64)
        scraper.start(sim, until=30.0)
        sim.run()  # must terminate: the periodic event is bounded
        assert sim.now == 30.0
        assert scraper.stats.scrapes == 6
