"""Registry-driven health-report reconciliation invariants.

The dashboard reads the shared registry; these tests pin the accounting
identities that keep it honest — per record, ``accepted = stored +
dropped + buffered + backlog``; per push, ``enqueued = sent + dropped +
queued`` — so future instrumentation can't desync the report from the
platform without a test going red.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.apisense.device import SensorRecord
from repro.apisense.hive import Hive
from repro.apisense.honeycomb import Honeycomb
from repro.apisense.monitoring import snapshot
from repro.apisense.tasks import SensingTask
from repro.simulation import Simulator
from repro.store import DatasetStore, IngestPipeline

TASK = "recon"


def make_hive(sim: Simulator, policy: str = "spill", buffer_capacity: int = 4096) -> Hive:
    store = DatasetStore(n_shards=2)
    pipeline = IngestPipeline(
        sim, store, policy=policy, buffer_capacity=buffer_capacity, flush_delay=0.2
    )
    hive = Hive(sim, store=store, pipeline=pipeline)
    owner = Honeycomb("recon-tests", hive)
    task = SensingTask(
        name=TASK,
        sensors=("gps", "battery"),
        sampling_period=60.0,
        upload_period=300.0,
        end=86400.0,
    )
    owner.register_task(task)
    hive.adopt_task(task, owner)
    return hive


def upload(hive: Hive, device: str, n: int, t0: float = 10.0) -> int:
    records = [
        SensorRecord(
            device_id=device,
            user=f"user-{device}",
            task=TASK,
            time=t0 + float(k),
            values={"battery": 0.5},
        )
        for k in range(n)
    ]
    return hive.receive_upload(device, f"user-{device}", TASK, records)


def assert_pipeline_identity(hive: Hive, at: float) -> None:
    report = snapshot(hive, at)
    assert report.pipeline_unaccounted == 0, report.to_text()
    assert report.pipeline_accepted == (
        report.store_records
        + report.pipeline_dropped
        + report.pipeline_buffered
        + report.pipeline_backlog
    )


class TestPipelineIdentity:
    @pytest.mark.parametrize("policy", ["spill", "reject", "drop-oldest"])
    def test_holds_under_each_policy_mid_flight_and_after_drain(self, policy):
        sim = Simulator()
        hive = make_hive(sim, policy=policy, buffer_capacity=8)
        # Overrun one shard's buffer so the policy actually fires.
        for index in range(4):
            upload(hive, "dev-a", 6, t0=10.0 + index)
        assert_pipeline_identity(hive, sim.now)  # buffered / backlog nonzero
        sim.run()
        assert_pipeline_identity(hive, sim.now)
        hive.pipeline.flush_all()
        assert_pipeline_identity(hive, sim.now)
        report = snapshot(hive, sim.now)
        assert report.pipeline_buffered == 0
        assert report.pipeline_backlog == 0
        if policy == "reject":
            assert report.pipeline_rejected > 0
        elif policy == "drop-oldest":
            assert report.pipeline_dropped > 0
        else:
            assert report.pipeline_spilled > 0
            assert report.pipeline_shed == 0

    def test_report_counters_come_from_the_registry(self):
        sim = Simulator()
        hive = make_hive(sim)
        upload(hive, "dev-a", 5)
        sim.run()
        hive.pipeline.flush_all()
        report = snapshot(hive, sim.now)
        pobs = hive.pipeline.obs
        assert report.pipeline_accepted == int(pobs.accepted.value)
        assert report.pipeline_flushes == int(pobs.flushes.value)
        assert report.store_records == int(hive.store.obs.records_appended.value)
        # ... and the registry agrees with the components' own counters.
        assert int(pobs.accepted.value) == hive.pipeline.stats.accepted
        assert int(hive.store.obs.records_appended.value) == hive.store.n_records

    def test_disabled_registry_falls_back_to_object_counters(self):
        obs.configure(metrics=False)
        sim = Simulator()
        hive = make_hive(sim)
        upload(hive, "dev-a", 5)
        sim.run()
        hive.pipeline.flush_all()
        report = snapshot(hive, sim.now)
        assert report.pipeline_accepted == 5
        assert report.store_records == 5
        assert_pipeline_identity(hive, sim.now)


class TestServerTierRendering:
    def test_absent_tier_is_labelled_not_zeroed(self):
        sim = Simulator()
        report = snapshot(make_hive(sim), 0.0)
        assert not report.server_attached
        text = report.to_text()
        assert "server: tier not attached" in text
        assert "subscriptions" not in text

    def test_push_identity_fields_default_clean(self):
        sim = Simulator()
        report = snapshot(make_hive(sim), 0.0)
        assert report.server_push_unaccounted == 0
