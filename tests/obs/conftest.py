"""Shared fixtures for the observability-tier tests.

The registry and tracer are process-wide singletons; every test here
starts from a fresh pair (and leaves the process-wide defaults —
metrics on, tracing off — behind for whatever suite runs next).
"""

from __future__ import annotations

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def fresh_obs():
    obs.reset(metrics=True, tracing=False)
    yield
    obs.reset(metrics=True, tracing=False)
