"""Unit + integration tests for the PRIVAPI middleware."""

import pytest

from repro.core.privapi import PrivApi, default_registry
from repro.core.report import PublicationReport
from repro.core.requirements import (
    CrowdedPlacesObjective,
    DistortionObjective,
    PrivacyRequirement,
    TrafficFlowObjective,
)
from repro.errors import PrivacyRequirementError
from repro.privacy.mechanisms import (
    GeoIndistinguishabilityMechanism,
    IdentityMechanism,
    SpeedSmoothingMechanism,
)


class TestConstruction:
    def test_default_registry_nonempty(self):
        assert len(default_registry()) >= 5

    def test_empty_registry_rejected(self):
        with pytest.raises(PrivacyRequirementError):
            PrivApi(mechanisms=[])


class TestAudit:
    @pytest.fixture(scope="class")
    def privapi(self):
        return PrivApi(
            mechanisms=[
                IdentityMechanism(),
                GeoIndistinguishabilityMechanism(0.01),
                SpeedSmoothingMechanism(100.0),
            ],
            seed=1,
        )

    def test_identity_fails_privacy(self, privapi, medium_population):
        requirement = PrivacyRequirement(max_poi_recall=0.25)
        evaluation = privapi.audit_mechanism(
            IdentityMechanism(),
            medium_population.dataset,
            requirement,
            CrowdedPlacesObjective(),
        )
        assert not evaluation.satisfies_privacy
        assert evaluation.poi_recall > 0.8
        assert evaluation.utility == pytest.approx(1.0)

    def test_smoothing_passes_privacy(self, privapi, medium_population):
        requirement = PrivacyRequirement(max_poi_recall=0.25)
        evaluation = privapi.audit_mechanism(
            SpeedSmoothingMechanism(100.0),
            medium_population.dataset,
            requirement,
            CrowdedPlacesObjective(),
        )
        assert evaluation.satisfies_privacy
        assert evaluation.utility > 0.4

    def test_reidentification_audit_optional(self, privapi, medium_population):
        requirement = PrivacyRequirement(
            max_poi_recall=1.0, max_reidentification=0.5
        )
        evaluation = privapi.audit_mechanism(
            IdentityMechanism(),
            medium_population.dataset,
            requirement,
            DistortionObjective(),
        )
        assert evaluation.reidentification is not None
        assert evaluation.reidentification > 0.5
        assert not evaluation.satisfies_privacy


class TestPublish:
    def test_strict_publication_chooses_smoothing(self, medium_population):
        privapi = PrivApi(seed=2)
        result = privapi.publish(
            medium_population.dataset,
            requirement=PrivacyRequirement(max_poi_recall=0.25),
            objective=CrowdedPlacesObjective(),
        )
        assert result.dataset is not None
        assert result.report.chosen is not None
        assert "speed-smoothing" in result.report.chosen

    def test_published_dataset_is_pseudonymized(self, medium_population):
        privapi = PrivApi(seed=2)
        result = privapi.publish(
            medium_population.dataset,
            requirement=PrivacyRequirement(max_poi_recall=0.25),
        )
        assert result.dataset is not None
        raw_users = set(medium_population.dataset.users)
        assert not (set(result.dataset.users) & raw_users)
        assert result.pseudonym_mapping is not None
        assert set(result.pseudonym_mapping.values()) <= raw_users

    def test_impossible_requirement_strict_returns_nothing(self, medium_population):
        privapi = PrivApi(
            mechanisms=[IdentityMechanism(), GeoIndistinguishabilityMechanism(0.05)],
            seed=2,
        )
        result = privapi.publish(
            medium_population.dataset,
            requirement=PrivacyRequirement(max_poi_recall=0.0),
            strict=True,
        )
        assert result.dataset is None
        assert result.report.chosen is None

    def test_impossible_requirement_lenient_falls_back(self, medium_population):
        privapi = PrivApi(
            mechanisms=[IdentityMechanism(), GeoIndistinguishabilityMechanism(0.005)],
            seed=2,
        )
        result = privapi.publish(
            medium_population.dataset,
            requirement=PrivacyRequirement(max_poi_recall=0.0),
            strict=False,
        )
        assert result.dataset is not None
        # The fallback is the most private candidate, not the best utility.
        assert "geo-indistinguishability" in result.report.chosen

    def test_objective_changes_choice_possible(self, medium_population):
        """With a permissive privacy bar, the distortion objective should
        prefer light noise while crowded-places can prefer smoothing."""
        mechanisms = [
            GeoIndistinguishabilityMechanism(0.05),  # ~40 m mean displacement
            SpeedSmoothingMechanism(250.0),
        ]
        privapi = PrivApi(mechanisms=mechanisms, seed=2)
        permissive = PrivacyRequirement(max_poi_recall=1.0)
        by_distortion = privapi.publish(
            medium_population.dataset, permissive, DistortionObjective()
        )
        assert "geo-indistinguishability" in by_distortion.report.chosen

    def test_report_rows_complete(self, medium_population):
        privapi = PrivApi(
            mechanisms=[IdentityMechanism(), SpeedSmoothingMechanism(100.0)], seed=2
        )
        result = privapi.publish(
            medium_population.dataset,
            requirement=PrivacyRequirement(max_poi_recall=0.25),
        )
        report = result.report
        assert isinstance(report, PublicationReport)
        assert len(report.evaluations) == 2
        text = report.to_text()
        assert "identity" in text and "speed-smoothing" in text
        assert "chosen:" in text

    def test_chosen_evaluation_lookup(self, medium_population):
        privapi = PrivApi(
            mechanisms=[SpeedSmoothingMechanism(100.0)], seed=2
        )
        result = privapi.publish(
            medium_population.dataset,
            requirement=PrivacyRequirement(max_poi_recall=0.3),
        )
        chosen = result.report.chosen_evaluation()
        assert chosen is not None
        assert chosen.satisfies_privacy
