"""Unit tests for privacy requirements and utility objectives."""

import pytest

from repro.core.requirements import (
    CrowdedPlacesObjective,
    DistortionObjective,
    PrivacyRequirement,
    TrafficFlowObjective,
)
from repro.errors import PrivacyRequirementError
from repro.privacy.mechanisms import (
    GeoIndistinguishabilityMechanism,
    IdentityMechanism,
    SpeedSmoothingMechanism,
)


class TestPrivacyRequirement:
    def test_defaults(self):
        requirement = PrivacyRequirement()
        assert requirement.max_poi_recall == 0.2
        assert requirement.max_reidentification is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_poi_recall": -0.1},
            {"max_poi_recall": 1.5},
            {"max_reidentification": 2.0},
            {"attack_radius_m": 0.0},
            {"attacker_denoise_window": 4},
            {"attacker_denoise_window": 0},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(PrivacyRequirementError):
            PrivacyRequirement(**kwargs)


OBJECTIVES = [
    CrowdedPlacesObjective(),
    TrafficFlowObjective(),
    DistortionObjective(),
]


@pytest.mark.parametrize("objective", OBJECTIVES, ids=lambda o: o.name)
class TestObjectiveContract:
    def test_identity_scores_high(self, objective, small_population):
        protected = IdentityMechanism().protect(small_population.dataset)
        score = objective.score(small_population.dataset, protected)
        assert score >= 0.95

    def test_score_in_unit_interval(self, objective, small_population):
        protected = GeoIndistinguishabilityMechanism(0.002).protect(
            small_population.dataset, seed=1
        )
        score = objective.score(small_population.dataset, protected)
        assert 0.0 <= score <= 1.0

    def test_empty_protected_scores_zero_or_low(self, objective, small_population):
        from repro.mobility.dataset import MobilityDataset

        score = objective.score(small_population.dataset, MobilityDataset([]))
        assert score <= 0.2


class TestObjectiveDiscrimination:
    def test_distortion_ranks_noise_levels(self, small_population):
        objective = DistortionObjective()
        mild = GeoIndistinguishabilityMechanism(0.05).protect(
            small_population.dataset, seed=1
        )
        harsh = GeoIndistinguishabilityMechanism(0.001).protect(
            small_population.dataset, seed=1
        )
        assert objective.score(small_population.dataset, mild) > objective.score(
            small_population.dataset, harsh
        )

    def test_crowded_places_tolerates_smoothing(self, medium_population):
        objective = CrowdedPlacesObjective()
        smoothed = SpeedSmoothingMechanism(100.0).protect(
            medium_population.dataset, seed=1
        )
        harsh_noise = GeoIndistinguishabilityMechanism(0.001).protect(
            medium_population.dataset, seed=1
        )
        assert objective.score(medium_population.dataset, smoothed) > objective.score(
            medium_population.dataset, harsh_noise
        )
