"""Integration tests for the continuous (budgeted) publisher."""

import pytest

from repro.core import CrowdedPlacesObjective, PrivacyRequirement, PrivApi
from repro.core.pipeline import ContinuousPublisher
from repro.privacy.budget import PrivacyBudgetLedger
from repro.privacy.mechanisms import (
    GeoIndistinguishabilityMechanism,
    SpeedSmoothingMechanism,
)
from repro.units import DAY


@pytest.fixture()
def batches(medium_population):
    """Three two-day batches from the six-day population."""
    dataset = medium_population.dataset
    return [
        dataset.slice_time(2 * i * DAY, 2 * (i + 1) * DAY) for i in range(3)
    ]


def make_publisher(ledger: PrivacyBudgetLedger, mechanisms=None) -> ContinuousPublisher:
    return ContinuousPublisher(
        privapi=PrivApi(
            mechanisms=mechanisms or [SpeedSmoothingMechanism(100.0)], seed=1
        ),
        ledger=ledger,
        requirement=PrivacyRequirement(max_poi_recall=0.3),
        objective=CrowdedPlacesObjective(),
    )


class TestContinuousPublishing:
    def test_epochs_within_cap_publish(self, batches):
        ledger = PrivacyBudgetLedger(epsilon_cap=1.0, exposure_cap=5)
        publisher = make_publisher(ledger)
        for batch in batches:
            record = publisher.publish_epoch(batch)
            assert record.published, record.refused_reason
        assert publisher.epochs_published == 3

    def test_exposure_cap_blocks_later_epochs(self, batches):
        ledger = PrivacyBudgetLedger(epsilon_cap=10.0, exposure_cap=2)
        publisher = make_publisher(ledger)
        outcomes = [publisher.publish_epoch(batch).published for batch in batches]
        assert outcomes[:2] == [True, True]
        assert outcomes[2] is False
        refusal = publisher.history[2]
        assert refusal.refused_reason is not None
        assert "budget" in refusal.refused_reason

    def test_structural_mechanism_spends_no_epsilon(self, batches):
        ledger = PrivacyBudgetLedger(epsilon_cap=0.001, exposure_cap=10)
        publisher = make_publisher(ledger)  # smoothing: epsilon cost 0
        record = publisher.publish_epoch(batches[0])
        assert record.published
        for user in record.users:
            assert ledger.account(user).epsilon_spent == 0.0

    def test_noise_mechanism_charges_epsilon(self, batches):
        ledger = PrivacyBudgetLedger(epsilon_cap=10.0, exposure_cap=10)
        publisher = make_publisher(
            ledger, mechanisms=[GeoIndistinguishabilityMechanism(0.001)]
        )
        # Permissive bar so the noisy mechanism can be chosen.
        publisher.requirement = PrivacyRequirement(max_poi_recall=1.0)
        record = publisher.publish_epoch(batches[0])
        assert record.published
        charged = ledger.account(record.users[0]).epsilon_spent
        assert charged == pytest.approx(0.1)  # 0.001/m * 100 scale

    def test_unsatisfiable_bar_refuses_without_charging(self, batches):
        ledger = PrivacyBudgetLedger(epsilon_cap=1.0, exposure_cap=5)
        publisher = make_publisher(
            ledger, mechanisms=[GeoIndistinguishabilityMechanism(0.05)]
        )
        publisher.requirement = PrivacyRequirement(max_poi_recall=0.0)
        record = publisher.publish_epoch(batches[0])
        assert not record.published
        assert record.chosen is None
        assert not ledger.summary()  # nobody charged

    def test_history_is_complete(self, batches):
        ledger = PrivacyBudgetLedger(epsilon_cap=1.0, exposure_cap=1)
        publisher = make_publisher(ledger)
        for batch in batches:
            publisher.publish_epoch(batch)
        assert [record.epoch for record in publisher.history] == [0, 1, 2]
        assert publisher.epochs_published == 1
