"""Unit tests for PRIVAPI parameter tuning."""

import pytest

from repro.core import (
    CrowdedPlacesObjective,
    ParameterSearch,
    PrivacyRequirement,
    PrivApi,
    tune_mechanism,
)
from repro.errors import PrivacyRequirementError
from repro.privacy.mechanisms import (
    GeoIndistinguishabilityMechanism,
    SpeedSmoothingMechanism,
)


class TestParameterSearch:
    def test_empty_values_rejected(self):
        with pytest.raises(PrivacyRequirementError):
            ParameterSearch("s", SpeedSmoothingMechanism, [])


class TestTuning:
    @pytest.fixture(scope="class")
    def privapi(self):
        return PrivApi(mechanisms=[SpeedSmoothingMechanism(100.0)], seed=3)

    def test_finds_compliant_smoothing_step(self, privapi, medium_population):
        search = ParameterSearch(
            name="smoothing-step",
            factory=lambda step: SpeedSmoothingMechanism(epsilon_m=step),
            values=[100.0, 250.0, 500.0],
        )
        result = tune_mechanism(
            privapi,
            search,
            medium_population.dataset,
            PrivacyRequirement(max_poi_recall=0.25),
            CrowdedPlacesObjective(),
        )
        assert result.satisfied
        assert result.best_value in search.values
        assert len(result.evaluations) == 3
        chosen = result.evaluations[result.best_value]
        assert chosen.satisfies_privacy
        # Best = max utility among compliant values.
        compliant = [e for e in result.evaluations.values() if e.satisfies_privacy]
        assert chosen.utility == max(e.utility for e in compliant)

    def test_impossible_bar_unsatisfied(self, privapi, medium_population):
        search = ParameterSearch(
            name="geo-ind",
            factory=lambda eps: GeoIndistinguishabilityMechanism(epsilon=eps),
            values=[0.05, 0.01],  # both leak nearly everything
        )
        result = tune_mechanism(
            privapi,
            search,
            medium_population.dataset,
            PrivacyRequirement(max_poi_recall=0.05),
            CrowdedPlacesObjective(),
        )
        assert not result.satisfied
        assert result.best_mechanism is None
        assert all(
            not evaluation.satisfies_privacy
            for evaluation in result.evaluations.values()
        )

    def test_frontier_monotone_privacy(self, privapi, medium_population):
        """Coarser smoothing -> weaker attack recall (the frontier)."""
        search = ParameterSearch(
            name="smoothing-step",
            factory=lambda step: SpeedSmoothingMechanism(epsilon_m=step),
            values=[100.0, 400.0],
        )
        result = tune_mechanism(
            privapi,
            search,
            medium_population.dataset,
            PrivacyRequirement(max_poi_recall=1.0),
            CrowdedPlacesObjective(),
        )
        assert (
            result.evaluations[400.0].poi_recall
            <= result.evaluations[100.0].poi_recall + 0.05
        )
