"""Unit tests for publication reports."""

from repro.core.report import MechanismEvaluation, PublicationReport


def evaluation(name: str, ok: bool = True, utility: float = 0.5) -> MechanismEvaluation:
    return MechanismEvaluation(
        mechanism=name,
        parameters={"x": 1},
        poi_recall=0.1,
        reidentification=None,
        utility=utility,
        suppression=0.0,
        satisfies_privacy=ok,
    )


class TestMechanismEvaluation:
    def test_summary_row_ok(self):
        row = evaluation("mech-a").summary_row()
        assert "mech-a" in row
        assert "[ok]" in row
        assert "reident=-" in row

    def test_summary_row_rejected(self):
        row = evaluation("mech-b", ok=False).summary_row()
        assert "[REJECTED]" in row

    def test_summary_row_with_reident(self):
        e = MechanismEvaluation(
            mechanism="m",
            parameters={},
            poi_recall=0.5,
            reidentification=0.75,
            utility=0.2,
            suppression=0.1,
            satisfies_privacy=False,
        )
        assert "reident=0.75" in e.summary_row()


class TestPublicationReport:
    def test_chosen_evaluation_found(self):
        report = PublicationReport(
            objective="crowded-places",
            requirement_max_poi_recall=0.2,
            evaluations=(evaluation("a"), evaluation("b", utility=0.9)),
            chosen="b",
        )
        chosen = report.chosen_evaluation()
        assert chosen is not None and chosen.mechanism == "b"

    def test_chosen_evaluation_missing(self):
        report = PublicationReport(
            objective="o",
            requirement_max_poi_recall=0.2,
            evaluations=(evaluation("a"),),
            chosen=None,
        )
        assert report.chosen_evaluation() is None

    def test_to_text_success(self):
        report = PublicationReport(
            objective="traffic-flow",
            requirement_max_poi_recall=0.25,
            evaluations=(evaluation("a"), evaluation("b")),
            chosen="a",
        )
        text = report.to_text()
        assert "traffic-flow" in text
        assert "chosen: a" in text
        assert text.count("\n") >= 4

    def test_to_text_failure(self):
        report = PublicationReport(
            objective="o",
            requirement_max_poi_recall=0.0,
            evaluations=(evaluation("a", ok=False),),
            chosen=None,
        )
        assert "nothing published" in report.to_text()
