"""Unit tests for Hive <-> Honeycomb wiring."""

import pytest

from repro.apisense.honeycomb import Honeycomb
from repro.apisense.tasks import SensingTask
from repro.errors import PlatformError
from repro.units import DAY, HOUR
from tests.apisense.conftest import build_device


def deploy_standard_task(sim, hive, honeycomb, end=12 * HOUR):
    task = SensingTask(
        name="mobility",
        sensors=("gps",),
        sampling_period=300.0,
        upload_period=3600.0,
        end=end,
    )
    honeycomb.deploy(task)
    return task


@pytest.fixture()
def populated_hive(sim, hive, small_population, sensor_suite):
    for index in range(len(small_population.dataset)):
        hive.register_device(build_device(small_population, sensor_suite, index=index))
    return hive


class TestRegistration:
    def test_register_devices(self, populated_hive, small_population):
        assert populated_hive.stats.devices_registered == 5
        assert len(populated_hive.community) == 5

    def test_duplicate_device_rejected(self, populated_hive, small_population, sensor_suite):
        duplicate = build_device(small_population, sensor_suite, index=0)
        with pytest.raises(PlatformError):
            populated_hive.register_device(duplicate)

    def test_device_lookup(self, populated_hive):
        device = populated_hive.devices[0]
        assert populated_hive.device(device.device_id) is device
        with pytest.raises(PlatformError):
            populated_hive.device("nope")


class TestTaskFlow:
    def test_publish_offers_to_all(self, sim, populated_hive):
        honeycomb = Honeycomb("lab", populated_hive)
        deploy_standard_task(sim, populated_hive, honeycomb)
        stats = populated_hive.stats.per_task["mobility"]
        assert stats.offers == 5
        sim.run_until(10.0)  # let delivery-latency offers land
        assert 0 <= stats.acceptances <= 5

    def test_duplicate_publication_rejected(self, sim, populated_hive):
        honeycomb = Honeycomb("lab", populated_hive)
        task = deploy_standard_task(sim, populated_hive, honeycomb)
        with pytest.raises(PlatformError):
            populated_hive.publish_task(task, owner=honeycomb)

    def test_honeycomb_duplicate_deploy_rejected(self, sim, populated_hive):
        honeycomb = Honeycomb("lab", populated_hive)
        task = deploy_standard_task(sim, populated_hive, honeycomb)
        with pytest.raises(PlatformError):
            honeycomb.deploy(task)

    def test_upload_for_unknown_task_rejected(self, populated_hive):
        with pytest.raises(PlatformError):
            populated_hive.receive_upload("dev-0", "user-0000", "ghost", [])

    def test_records_flow_to_honeycomb(self, sim, populated_hive):
        honeycomb = Honeycomb("lab", populated_hive)
        task = deploy_standard_task(sim, populated_hive, honeycomb)
        sim.run_until(task.end + task.upload_period + 10.0)
        stats = populated_hive.stats.per_task["mobility"]
        if stats.acceptances > 0:
            assert stats.records > 0
            assert honeycomb.n_records("mobility") == stats.records

    def test_hooks_fire_on_routing(self, sim, populated_hive):
        honeycomb = Honeycomb("lab", populated_hive)
        batches = []
        honeycomb.add_hook(lambda name, records: batches.append((name, len(records))))
        task = deploy_standard_task(sim, populated_hive, honeycomb)
        sim.run_until(task.end + task.upload_period + 10.0)
        if populated_hive.stats.per_task["mobility"].records > 0:
            assert batches
            assert all(name == "mobility" for name, _ in batches)

    def test_foreign_task_data_rejected(self, populated_hive):
        honeycomb = Honeycomb("lab", populated_hive)
        with pytest.raises(PlatformError):
            honeycomb.receive_dataset("ghost", [])

    def test_unknown_task_records_rejected(self, populated_hive):
        honeycomb = Honeycomb("lab", populated_hive)
        with pytest.raises(PlatformError):
            honeycomb.records("ghost")


class TestMobilityDatasetAssembly:
    def test_gps_records_become_trajectories(self, sim, populated_hive, small_population):
        honeycomb = Honeycomb("lab", populated_hive)
        task = deploy_standard_task(sim, populated_hive, honeycomb, end=DAY)
        sim.run_until(task.end + task.upload_period + 10.0)
        dataset = honeycomb.mobility_dataset("mobility")
        stats = populated_hive.stats.per_task["mobility"]
        if stats.acceptances > 0:
            assert len(dataset) == stats.acceptances
            assert set(dataset.users) <= set(small_population.dataset.users)
            assert dataset.n_records == stats.records

    def test_empty_task_yields_empty_dataset(self, sim, populated_hive):
        honeycomb = Honeycomb("lab", populated_hive)
        task = SensingTask(
            name="battery-only", sensors=("battery",), sampling_period=600.0, end=HOUR
        )
        honeycomb.deploy(task)
        sim.run_until(2 * HOUR)
        dataset = honeycomb.mobility_dataset("battery-only")
        assert len(dataset) == 0  # no GPS values to assemble


class TestIncentiveIntegration:
    def test_contribution_updates_community(self, sim, populated_hive):
        from repro.apisense.incentives import RewardIncentive

        populated_hive.incentive = RewardIncentive()
        honeycomb = Honeycomb("lab", populated_hive)
        task = deploy_standard_task(sim, populated_hive, honeycomb)
        sim.run_until(task.end + task.upload_period + 10.0)
        contributions = sum(
            state.contributions for state in populated_hive.community.values()
        )
        uploads = populated_hive.stats.per_task["mobility"].uploads
        assert contributions == uploads

    def test_mean_motivation_bounds(self, populated_hive):
        assert 0.0 < populated_hive.mean_motivation() < 1.0

    def test_end_of_day_decays(self, populated_hive):
        before = populated_hive.mean_motivation()
        populated_hive.end_of_day()
        assert populated_hive.mean_motivation() < before
