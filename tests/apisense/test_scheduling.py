"""Unit tests for virtual-sensor scheduling strategies."""

import numpy as np
import pytest

from repro.apisense.scheduling import (
    CoverageGreedyStrategy,
    EnergyAwareStrategy,
    FairBudgetStrategy,
    RoundRobinStrategy,
)
from repro.geo.grid import SpatialGrid
from tests.apisense.conftest import build_device
from repro.apisense.battery import Battery, BatteryModel


@pytest.fixture()
def devices(small_population, sensor_suite):
    return [
        build_device(small_population, sensor_suite, index=i)
        for i in range(len(small_population.dataset))
    ]


class TestRoundRobin:
    def test_cycles_in_order(self, devices, rng):
        strategy = RoundRobinStrategy()
        picks = [strategy.select(devices, 0.0, rng).device_id for _ in range(10)]
        expected = [devices[i % 5].device_id for i in range(10)]
        assert picks == expected

    def test_empty_list(self, rng):
        assert RoundRobinStrategy().select([], 0.0, rng) is None

    def test_adapts_to_shrinking_pool(self, devices, rng):
        strategy = RoundRobinStrategy()
        strategy.select(devices, 0.0, rng)
        pick = strategy.select(devices[:2], 0.0, rng)
        assert pick in devices[:2]


class TestEnergyAware:
    def test_prefers_full_batteries(self, devices, rng):
        # Give device 0 a full battery, the rest nearly empty.
        devices[0].battery = Battery(BatteryModel(charge_per_hour=0.0), level=1.0, time=8 * 3600)
        for device in devices[1:]:
            device.battery = Battery(BatteryModel(charge_per_hour=0.0), level=0.05, time=8 * 3600)
        strategy = EnergyAwareStrategy(alpha=3.0)
        picks = [
            strategy.select(devices, 8 * 3600.0, rng).device_id for _ in range(100)
        ]
        share = picks.count(devices[0].device_id) / len(picks)
        assert share > 0.9

    def test_uniform_when_equal(self, devices, rng):
        strategy = EnergyAwareStrategy(alpha=2.0)
        picks = [strategy.select(devices, 0.0, rng).device_id for _ in range(300)]
        counts = {d.device_id: picks.count(d.device_id) for d in devices}
        assert min(counts.values()) > 20  # no starvation

    def test_empty_list(self, rng):
        assert EnergyAwareStrategy().select([], 0.0, rng) is None


class TestCoverageGreedy:
    def test_spreads_over_cells(self, devices, rng, small_population):
        grid = SpatialGrid(small_population.city.bounding_box, cell_size_m=1000.0)
        strategy = CoverageGreedyStrategy(grid)
        time = 12 * 3600.0
        first = strategy.select(devices, time, rng)
        second = strategy.select(devices, time, rng)
        # Second pick must avoid the cell just served (if another exists).
        cell_first = grid.cell_of(first.position(time))
        cell_second = grid.cell_of(second.position(time))
        occupied_cells = {grid.cell_of(d.position(time)) for d in devices}
        if len(occupied_cells) > 1:
            assert cell_second != cell_first

    def test_empty_list(self, rng, small_population):
        grid = SpatialGrid(small_population.city.bounding_box, cell_size_m=1000.0)
        assert CoverageGreedyStrategy(grid).select([], 0.0, rng) is None


class TestFairBudget:
    def test_equalizes_counts(self, devices, rng):
        strategy = FairBudgetStrategy()
        picks = [strategy.select(devices, 0.0, rng).device_id for _ in range(25)]
        counts = {d.device_id: picks.count(d.device_id) for d in devices}
        assert max(counts.values()) - min(counts.values()) <= 1

    def test_empty_list(self, rng):
        assert FairBudgetStrategy().select([], 0.0, rng) is None
