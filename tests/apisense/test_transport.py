"""Unit tests for the transport model and lossy-uplink behaviour."""

import pytest

from repro.apisense import Campaign, CampaignConfig, SensingTask
from repro.apisense.transport import Transport
from repro.errors import PlatformError
from repro.simulation import Simulator
from repro.units import DAY


class TestTransport:
    def test_parameter_validation(self):
        with pytest.raises(PlatformError):
            Transport(latency_mean=-1.0)
        with pytest.raises(PlatformError):
            Transport(loss=1.0)
        with pytest.raises(PlatformError):
            Transport(loss=-0.1)

    def test_lossless_always_delivers(self):
        sim = Simulator()
        transport = Transport(loss=0.0, seed=1)
        delivered = []
        for i in range(50):
            assert transport.send(sim, lambda i=i: delivered.append(i))
        sim.run()
        assert len(delivered) == 50
        assert transport.stats.loss_rate == 0.0

    def test_latency_applied(self):
        sim = Simulator()
        transport = Transport(latency_mean=0.5, latency_jitter=0.0, seed=1)
        times = []
        transport.send(sim, lambda: times.append(sim.now))
        sim.run()
        assert times[0] == pytest.approx(0.5, abs=0.01)

    def test_loss_rate_converges(self):
        sim = Simulator()
        transport = Transport(loss=0.3, seed=2)
        outcomes = [transport.send(sim, lambda: None) for _ in range(1000)]
        observed = 1.0 - sum(outcomes) / len(outcomes)
        assert observed == pytest.approx(0.3, abs=0.05)
        assert transport.stats.loss_rate == pytest.approx(observed)

    def test_payload_accounting(self):
        sim = Simulator()
        transport = Transport(seed=3)
        transport.send(sim, lambda: None, payload_items=25)
        assert transport.stats.payload_items == 25


class TestLossyCampaign:
    def _run(self, population, loss: float):
        campaign = Campaign(
            population,
            config=CampaignConfig(n_days=2, seed=4, uplink_loss=loss),
        )
        honeycomb = campaign.deploy(
            SensingTask(
                name="study",
                sensors=("gps",),
                sampling_period=300.0,
                upload_period=1800.0,
                end=2 * DAY,
            )
        )
        report = campaign.run()
        return campaign, honeycomb, report

    def test_store_and_forward_recovers_data(self, small_population):
        """Lost uploads are retried: collected volume under 20 % loss must
        stay close to the lossless run (freshness, not data, is lost)."""
        _, _, lossless = self._run(small_population, loss=0.0)
        campaign, _, lossy = self._run(small_population, loss=0.2)
        assert campaign.hive.transport.stats.messages_lost > 0
        assert lossy.total_records >= lossless.total_records * 0.75

    def test_failed_uploads_counted(self, small_population):
        campaign, _, _ = self._run(small_population, loss=0.3)
        failed = sum(
            stats.uploads_failed
            for device in campaign.devices
            for stats in device.stats.values()
        )
        assert failed > 0

    def test_lost_offers_reduce_initial_acceptance(self, small_population):
        """Offers ride the lossy downlink too: with heavy loss, fewer
        devices start the task on day one (the daily participation pass
        recovers them later)."""
        _, _, lossless = self._run(small_population, loss=0.0)
        _, _, lossy = self._run(small_population, loss=0.6)
        assert (
            lossy.acceptance_rate_per_task["study"]
            <= lossless.acceptance_rate_per_task["study"]
        )
