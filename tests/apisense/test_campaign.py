"""Integration tests for full campaigns (paper Figure 1 end to end)."""

import pytest

from repro.apisense.campaign import Campaign, CampaignConfig
from repro.apisense.incentives import RewardIncentive, WinWinIncentive
from repro.apisense.preferences import UserPreferences
from repro.apisense.tasks import SensingTask
from repro.errors import PlatformError
from repro.units import DAY


def mobility_task(days: float = 2.0, period: float = 300.0) -> SensingTask:
    return SensingTask(
        name="mobility",
        sensors=("gps", "battery"),
        sampling_period=period,
        upload_period=3600.0,
        end=days * DAY,
    )


@pytest.fixture(scope="module")
def finished_campaign(small_population):
    campaign = Campaign(
        small_population,
        incentive=RewardIncentive(),
        config=CampaignConfig(n_days=2, seed=3),
    )
    honeycomb = campaign.deploy(mobility_task(days=2.0))
    report = campaign.run()
    return campaign, honeycomb, report


class TestCampaignRun:
    def test_no_task_rejected(self, small_population):
        campaign = Campaign(small_population, config=CampaignConfig(n_days=1))
        with pytest.raises(PlatformError):
            campaign.run()

    def test_report_totals(self, finished_campaign):
        _, _, report = finished_campaign
        assert report.n_devices == 5
        assert report.duration_days == pytest.approx(2.0)
        assert report.total_records > 0
        assert len(report.daily_records) == 2
        assert sum(report.daily_records) == report.total_records

    def test_acceptance_rate_in_bounds(self, finished_campaign):
        _, _, report = finished_campaign
        rate = report.acceptance_rate_per_task["mobility"]
        assert 0.0 <= rate <= 1.0

    def test_messages_and_events_counted(self, finished_campaign):
        _, _, report = finished_campaign
        assert report.messages_sent > 0
        assert report.events_processed > report.messages_sent

    def test_honeycomb_received_everything(self, finished_campaign):
        _, honeycomb, report = finished_campaign
        assert honeycomb.n_records("mobility") == report.total_records

    def test_collected_mobility_matches_population(
        self, finished_campaign, small_population
    ):
        _, honeycomb, _ = finished_campaign
        dataset = honeycomb.mobility_dataset("mobility")
        assert set(dataset.users) <= set(small_population.dataset.users)
        # Collected positions are true device positions (GPS sensor).
        for trajectory in dataset:
            original = small_population.dataset.get(trajectory.user)
            from repro.geo.distance import haversine_m

            sample = trajectory.records[len(trajectory) // 2]
            expected = original.point_at_time(sample.time)
            assert haversine_m(sample.point, expected) < 1.0

    def test_deterministic_given_seed(self, small_population):
        def run():
            campaign = Campaign(
                small_population,
                incentive=WinWinIncentive(),
                config=CampaignConfig(n_days=1, seed=7),
            )
            campaign.deploy(mobility_task(days=1.0))
            return campaign.run()

        assert run().records_per_task == run().records_per_task


class TestPreferencesInCampaign:
    def test_opted_out_users_contribute_nothing(self, small_population):
        users = small_population.dataset.users
        preferences = {
            users[0]: UserPreferences(allowed_sensors=frozenset({"battery"}))
        }
        campaign = Campaign(
            small_population,
            config=CampaignConfig(n_days=1, seed=5),
            preferences=preferences,
        )
        honeycomb = campaign.deploy(mobility_task(days=1.0))
        campaign.run()
        dataset = honeycomb.mobility_dataset("mobility")
        assert users[0] not in dataset.users

    def test_recruitment_quota_limits_offers(self, small_population):
        from repro.apisense import QuotaRecruitment

        campaign = Campaign(small_population, config=CampaignConfig(n_days=1, seed=8))
        campaign.deploy(
            mobility_task(days=1.0), recruitment=QuotaRecruitment(2)
        )
        campaign.run()
        assert campaign.hive.stats.per_task["mobility"].offers == 2

    def test_multiple_honeycombs(self, small_population):
        campaign = Campaign(small_population, config=CampaignConfig(n_days=1, seed=6))
        campaign.deploy(mobility_task(days=1.0), honeycomb="lab-a")
        task_b = SensingTask(
            name="net", sensors=("network",), sampling_period=600.0, end=DAY
        )
        campaign.deploy(task_b, honeycomb="lab-b")
        report = campaign.run()
        assert set(report.records_per_task) == {"mobility", "net"}
        assert campaign.honeycomb("lab-a").n_records("mobility") == report.records_per_task["mobility"]
        assert campaign.honeycomb("lab-b").n_records("net") == report.records_per_task["net"]


class TestSecureAggregate:
    """The privacy tier over a finished campaign (end-to-end path)."""

    def test_secure_equals_plaintext_on_campaign_data(self, finished_campaign):
        import random

        import numpy as np

        from repro.privacy.secure_aggregation import SecureAggregationPolicy

        campaign, _, report = finished_campaign
        result = campaign.secure_aggregate(
            "mobility",
            policy=SecureAggregationPolicy(key_bits=128),
            rng=random.Random(21),
        )
        batch = campaign.hive.store.scan("mobility")
        finite = batch.value[np.isfinite(batch.value)]
        assert result.records == len(batch)
        assert result.value_count == len(finite)
        assert result.value_sum == pytest.approx(
            float(finite.sum()), abs=0.5 * result.contributors / 1000.0
        )
        assert result.dropped == ()

    def test_profiles_carry_live_battery_levels(self, finished_campaign):
        campaign, _, _ = finished_campaign
        profiles = campaign.hive.secure_participants()
        assert profiles  # every registered device's user is profiled
        for profile in profiles.values():
            assert 0.0 <= profile.battery <= 1.0
