"""Fixtures for platform tests: a bound device in a tiny simulation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apisense.battery import Battery, BatteryModel
from repro.apisense.device import MobileDevice
from repro.apisense.hive import Hive
from repro.apisense.preferences import UserPreferences
from repro.apisense.sensors import default_sensor_suite
from repro.simulation import Simulator


@pytest.fixture()
def sim() -> Simulator:
    return Simulator()


@pytest.fixture()
def hive(sim) -> Hive:
    return Hive(sim, seed=1)


@pytest.fixture(scope="session")
def sensor_suite(test_city):
    return default_sensor_suite(test_city, np.random.default_rng(3))


#: A battery that never charges (for depletion tests).
NO_CHARGE = BatteryModel(charge_per_hour=0.0)


def build_device(
    population,
    sensor_suite,
    index: int = 0,
    preferences: UserPreferences | None = None,
    battery_level: float = 1.0,
    battery_model: BatteryModel | None = None,
) -> MobileDevice:
    user = population.dataset.users[index]
    return MobileDevice(
        device_id=f"dev-{index}",
        user=user,
        trajectory=population.dataset.get(user),
        sensors=sensor_suite,
        battery=Battery(battery_model or BatteryModel(), level=battery_level),
        preferences=preferences,
        seed=index,
    )


@pytest.fixture()
def device(small_population, sensor_suite) -> MobileDevice:
    return build_device(small_population, sensor_suite)
