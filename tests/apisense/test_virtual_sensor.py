"""Unit tests for virtual sensors."""

import pytest

from repro.apisense.battery import Battery, BatteryModel
from repro.apisense.preferences import UserPreferences
from repro.apisense.scheduling import EnergyAwareStrategy, RoundRobinStrategy
from repro.apisense.virtual_sensor import VirtualSensor
from repro.errors import PlatformError
from repro.simulation import Simulator
from repro.units import HOUR
from tests.apisense.conftest import build_device


@pytest.fixture()
def vsensor_parts(small_population, sensor_suite):
    sim = Simulator(start_time=8 * HOUR)
    devices = [
        build_device(small_population, sensor_suite, index=i)
        for i in range(len(small_population.dataset))
    ]
    return sim, devices


class TestConstruction:
    def test_needs_devices(self, vsensor_parts):
        sim, _ = vsensor_parts
        with pytest.raises(PlatformError):
            VirtualSensor("v", "gps", [], RoundRobinStrategy(), sim)

    def test_members_must_have_sensor(self, vsensor_parts):
        sim, devices = vsensor_parts
        with pytest.raises(PlatformError):
            VirtualSensor("v", "thermometer", devices, RoundRobinStrategy(), sim)


class TestReads:
    def test_read_returns_device_and_value(self, vsensor_parts):
        sim, devices = vsensor_parts
        sensor = VirtualSensor("v", "battery", devices, RoundRobinStrategy(), sim)
        result = sensor.read()
        assert result is not None
        device_id, value = result
        assert device_id in {d.device_id for d in devices}
        assert 0.0 <= value <= 1.0

    def test_round_robin_spreads_reads(self, vsensor_parts):
        sim, devices = vsensor_parts
        sensor = VirtualSensor("v", "gps", devices, RoundRobinStrategy(), sim)
        for _ in range(10):
            sensor.read()
        assert len(sensor.stats.served_per_device) == len(devices)
        assert sensor.stats.reads_served == 10
        assert sensor.stats.availability == 1.0

    def test_unavailable_when_all_dead(self, small_population, sensor_suite):
        sim = Simulator(start_time=12 * HOUR)
        dead = []
        for index in range(3):
            device = build_device(small_population, sensor_suite, index=index)
            device.battery = Battery(
                BatteryModel(charge_per_hour=0.0), level=0.0, time=12 * HOUR
            )
            dead.append(device)
        sensor = VirtualSensor("v", "gps", dead, RoundRobinStrategy(), sim)
        assert sensor.read() is None
        assert sensor.stats.reads_unavailable == 1

    def test_quiet_users_not_selected(self, small_population, sensor_suite):
        sim = Simulator(start_time=12 * HOUR)
        quiet_prefs = UserPreferences(quiet_hours=((11 * HOUR, 13 * HOUR),))
        devices = [
            build_device(small_population, sensor_suite, index=0, preferences=quiet_prefs),
            build_device(small_population, sensor_suite, index=1),
        ]
        sensor = VirtualSensor("v", "gps", devices, RoundRobinStrategy(), sim)
        for _ in range(6):
            result = sensor.read()
            assert result is not None
            assert result[0] == devices[1].device_id


class TestFairness:
    def test_battery_fairness_index(self, vsensor_parts):
        sim, devices = vsensor_parts
        sensor = VirtualSensor("v", "gps", devices, EnergyAwareStrategy(), sim)
        fairness = sensor.battery_fairness()
        assert 0.0 < fairness <= 1.0

    def test_levels_reported_for_all(self, vsensor_parts):
        sim, devices = vsensor_parts
        sensor = VirtualSensor("v", "gps", devices, EnergyAwareStrategy(), sim)
        assert set(sensor.battery_levels()) == {d.device_id for d in devices}
