"""Unit tests for the task DSL and its validation."""

import pytest

from repro.apisense.tasks import KNOWN_SENSORS, SensingTask
from repro.errors import TaskValidationError
from repro.geo.bbox import BoundingBox


class TestValidation:
    def test_minimal_valid_task(self):
        task = SensingTask(name="t", sensors=("gps",))
        assert task.duration > 0
        assert task.expected_samples() > 0

    def test_empty_name_rejected(self):
        with pytest.raises(TaskValidationError):
            SensingTask(name="", sensors=("gps",))

    def test_no_sensors_rejected(self):
        with pytest.raises(TaskValidationError):
            SensingTask(name="t", sensors=())

    def test_unknown_sensor_rejected(self):
        with pytest.raises(TaskValidationError) as error:
            SensingTask(name="t", sensors=("gps", "microphone"))
        assert "microphone" in str(error.value)

    def test_duplicate_sensor_rejected(self):
        with pytest.raises(TaskValidationError):
            SensingTask(name="t", sensors=("gps", "gps"))

    def test_sub_second_sampling_rejected(self):
        with pytest.raises(TaskValidationError):
            SensingTask(name="t", sensors=("gps",), sampling_period=0.5)

    def test_upload_faster_than_sampling_rejected(self):
        with pytest.raises(TaskValidationError):
            SensingTask(
                name="t", sensors=("gps",), sampling_period=60.0, upload_period=30.0
            )

    def test_backwards_window_rejected(self):
        with pytest.raises(TaskValidationError):
            SensingTask(name="t", sensors=("gps",), start=100.0, end=50.0)

    def test_non_callable_script_rejected(self):
        with pytest.raises(TaskValidationError):
            SensingTask(name="t", sensors=("gps",), script="not-a-function")  # type: ignore[arg-type]

    def test_all_known_sensors_accepted(self):
        SensingTask(name="t", sensors=tuple(sorted(KNOWN_SENSORS)))

    def test_region_task(self):
        region = BoundingBox(south=44.8, west=-0.65, north=44.88, east=-0.5)
        task = SensingTask(name="t", sensors=("gps",), region=region)
        assert task.region == region


class TestDerivedQuantities:
    def test_expected_samples(self):
        task = SensingTask(
            name="t", sensors=("gps",), sampling_period=60.0, start=0.0, end=3600.0
        )
        assert task.expected_samples() == 60

    def test_script_attached(self):
        def keep_fast(values):
            return values if values.get("accelerometer", 0) > 1.0 else None

        task = SensingTask(name="t", sensors=("accelerometer",), script=keep_fast)
        assert task.script is keep_fast
