"""Unit tests for sensor models."""

import numpy as np
import pytest

from repro.apisense.sensors import (
    AccelerometerSensor,
    BatterySensor,
    GpsSensor,
    NetworkQualitySensor,
    default_sensor_suite,
)
from repro.errors import PlatformError
from repro.geo.distance import haversine_m
from repro.geo.point import GeoPoint
from repro.units import HOUR


class TestSensorSuite:
    def test_default_suite_contents(self, sensor_suite):
        assert sensor_suite.names() == {"gps", "battery", "network", "accelerometer"}
        assert "gps" in sensor_suite

    def test_unknown_sensor_raises(self, sensor_suite):
        with pytest.raises(PlatformError):
            sensor_suite.get("thermometer")

    def test_deterministic_towers(self, test_city):
        a = default_sensor_suite(test_city, np.random.default_rng(3))
        b = default_sensor_suite(test_city, np.random.default_rng(3))
        assert a.get("network").towers == b.get("network").towers


class TestGpsSensor(object):
    def test_reads_trajectory_position(self, device, rng):
        position = GpsSensor().read(device, 2 * HOUR, rng)
        assert isinstance(position, GeoPoint)
        expected = device.trajectory.point_at_time(2 * HOUR)
        assert haversine_m(position, expected) < 1.0


class TestBatterySensor:
    def test_reads_level(self, device, rng):
        level = BatterySensor().read(device, 12 * HOUR, rng)
        assert 0.0 <= level <= 1.0


class TestNetworkSensor:
    def test_requires_towers(self):
        with pytest.raises(PlatformError):
            NetworkQualitySensor(towers=())

    def test_rssi_range(self, device, rng):
        sensor = device.sensors.get("network")
        for hour in range(0, 24, 3):
            rssi = sensor.read(device, hour * HOUR, rng)
            assert -120.0 <= rssi <= -40.0

    def test_signal_decays_with_distance(self, device):
        tower = device.trajectory.point_at_time(0)
        sensor = NetworkQualitySensor(towers=(tower,), shadowing_db=0.0)
        rng = np.random.default_rng(0)
        near = sensor.read(device, 0.0, rng)

        far_tower = GeoPoint(tower.lat + 0.05, tower.lon)
        far_sensor = NetworkQualitySensor(towers=(far_tower,), shadowing_db=0.0)
        far = far_sensor.read(device, 0.0, rng)
        assert near > far


class TestAccelerometerSensor:
    def test_still_at_home_at_night(self, device, rng):
        # 3 AM: everyone is home; activity should be near zero.
        activity = AccelerometerSensor(noise=0.0).read(device, 3 * HOUR, rng)
        assert activity < 1.0

    def test_nonnegative(self, device, rng):
        sensor = AccelerometerSensor(noise=0.5)
        for hour in range(24):
            assert sensor.read(device, hour * HOUR, rng) >= 0.0
