"""Unit tests for task script vetting."""

import pytest

from repro.apisense.tasks import SensingTask
from repro.apisense.vetting import dry_run_task


def task_with(script=None, sensors=("gps", "battery")):
    return SensingTask(name="vet-me", sensors=sensors, script=script)


class TestDryRun:
    def test_scriptless_task_passes_trivially(self):
        report = dry_run_task(task_with())
        assert report.errors == 0
        assert report.dropped == 0
        assert report.acceptable()

    def test_clean_script_passes(self):
        report = dry_run_task(task_with(script=lambda values: values))
        assert report.error_rate == 0.0
        assert report.acceptable()

    def test_crashing_script_rejected(self):
        def explode(values):
            raise RuntimeError("boom")

        report = dry_run_task(task_with(script=explode))
        assert report.error_rate == 1.0
        assert not report.acceptable()
        assert any("boom" in message for message in report.error_messages)

    def test_error_messages_deduplicated_and_capped(self):
        counter = {"n": 0}

        def varied_errors(values):
            counter["n"] += 1
            raise ValueError(f"error-{counter['n'] % 20}")

        report = dry_run_task(task_with(script=varied_errors), n_samples=100)
        assert len(report.error_messages) == 10

    def test_drop_everything_rejected(self):
        report = dry_run_task(task_with(script=lambda values: None))
        assert report.drop_rate == 1.0
        assert not report.acceptable()

    def test_selective_filter_accepted(self):
        def keep_low_battery(values):
            return values if values["battery"] < 0.5 else None

        report = dry_run_task(task_with(script=keep_low_battery), n_samples=400)
        assert 0.3 < report.drop_rate < 0.7
        assert report.acceptable()

    def test_deterministic_per_seed(self):
        def flaky(values):
            if values["battery"] > 0.9:
                raise RuntimeError("rare")
            return values

        a = dry_run_task(task_with(script=flaky), seed=5)
        b = dry_run_task(task_with(script=flaky), seed=5)
        assert a.errors == b.errors

    def test_deploy_with_vetting_blocks_bad_script(self, sim, hive):
        from repro.apisense.honeycomb import Honeycomb
        from repro.errors import TaskValidationError

        def explode(values):
            raise RuntimeError("bad script")

        honeycomb = Honeycomb("lab", hive)
        with pytest.raises(TaskValidationError) as error:
            honeycomb.deploy(task_with(script=explode), vet=True)
        assert "failed vetting" in str(error.value)
        assert honeycomb.tasks == []  # nothing was registered

    def test_deploy_with_vetting_passes_good_script(self, sim, hive):
        from repro.apisense.honeycomb import Honeycomb

        honeycomb = Honeycomb("lab", hive)
        honeycomb.deploy(task_with(script=lambda values: values), vet=True)
        assert len(honeycomb.tasks) == 1

    def test_all_sensor_kinds_synthesized(self):
        seen = {}

        def record_types(values):
            seen.update({k: type(v).__name__ for k, v in values.items()})
            return values

        task = SensingTask(
            name="v",
            sensors=("gps", "battery", "network", "accelerometer"),
            script=record_types,
        )
        dry_run_task(task, n_samples=5)
        assert seen["gps"] == "GeoPoint"
        assert seen["battery"] == "float"
