"""Unit tests for user preferences and the on-device privacy filters."""

import pytest

from repro.apisense.filters import (
    AreaFenceFilter,
    FieldDropFilter,
    LocationBlurFilter,
    PrivacyFilterChain,
    QuietHoursFilter,
)
from repro.apisense.preferences import UserPreferences
from repro.errors import PlatformError
from repro.geo.distance import haversine_m
from repro.geo.point import GeoPoint
from repro.units import HOUR

HOME = GeoPoint(44.80, -0.60)


class TestPreferences:
    def test_defaults_allow_everything(self):
        preferences = UserPreferences()
        assert preferences.allows_sensors(("gps", "battery"))
        assert not preferences.in_quiet_hours(12 * HOUR)

    def test_sensor_restriction(self):
        preferences = UserPreferences(allowed_sensors=frozenset({"battery"}))
        assert preferences.allows_sensors(("battery",))
        assert not preferences.allows_sensors(("gps",))

    def test_quiet_hours_plain_window(self):
        preferences = UserPreferences(quiet_hours=((9 * HOUR, 17 * HOUR),))
        assert preferences.in_quiet_hours(12 * HOUR)
        assert not preferences.in_quiet_hours(8 * HOUR)

    def test_quiet_hours_wrap_midnight(self):
        preferences = UserPreferences(quiet_hours=((22 * HOUR, 6 * HOUR),))
        assert preferences.in_quiet_hours(23 * HOUR)
        assert preferences.in_quiet_hours(3 * HOUR)
        assert not preferences.in_quiet_hours(12 * HOUR)

    def test_invalid_quiet_hours(self):
        with pytest.raises(PlatformError):
            UserPreferences(quiet_hours=((0.0, 90000.0),))

    def test_invalid_zone_radius(self):
        with pytest.raises(PlatformError):
            UserPreferences(forbidden_zones=((HOME, 0.0),))

    def test_negative_blur(self):
        with pytest.raises(PlatformError):
            UserPreferences(blur_cell_m=-5.0)


class TestQuietHoursFilter:
    def test_drops_inside_window(self):
        preferences = UserPreferences(quiet_hours=((9 * HOUR, 17 * HOUR),))
        quiet_filter = QuietHoursFilter(preferences)
        assert quiet_filter.apply({"gps": HOME}, 12 * HOUR) is None
        assert quiet_filter.apply({"gps": HOME}, 18 * HOUR) is not None


class TestAreaFenceFilter:
    def test_drops_inside_zone(self):
        fence = AreaFenceFilter(zones=((HOME, 200.0),))
        assert fence.apply({"gps": HOME}, 0.0) is None

    def test_keeps_outside_zone(self):
        fence = AreaFenceFilter(zones=((HOME, 200.0),))
        far = GeoPoint(44.84, -0.56)
        assert fence.apply({"gps": far}, 0.0) == {"gps": far}

    def test_passes_samples_without_gps(self):
        fence = AreaFenceFilter(zones=((HOME, 200.0),))
        assert fence.apply({"battery": 0.5}, 0.0) == {"battery": 0.5}


class TestLocationBlurFilter:
    def test_blur_moves_within_cell(self):
        blur = LocationBlurFilter(cell_m=400.0)
        result = blur.apply({"gps": HOME}, 0.0)
        assert result is not None
        moved = haversine_m(result["gps"], HOME)
        assert moved <= 400.0 * 0.71 + 1.0

    def test_blur_stable_for_same_point(self):
        blur = LocationBlurFilter(cell_m=400.0)
        a = blur.apply({"gps": HOME}, 0.0)["gps"]
        b = blur.apply({"gps": HOME}, 100.0)["gps"]
        assert a == b

    def test_nearby_points_blur_to_same_cell_center(self):
        blur = LocationBlurFilter(cell_m=500.0)
        near = GeoPoint(HOME.lat + 0.0001, HOME.lon)
        a = blur.apply({"gps": HOME}, 0.0)["gps"]
        b = blur.apply({"gps": near}, 0.0)["gps"]
        assert a == b

    def test_other_fields_untouched(self):
        blur = LocationBlurFilter(cell_m=400.0)
        result = blur.apply({"gps": HOME, "battery": 0.7}, 0.0)
        assert result["battery"] == 0.7


class TestFieldDropFilter:
    def test_drops_named_fields(self):
        drop = FieldDropFilter(fields=frozenset({"network"}))
        result = drop.apply({"gps": HOME, "network": -70.0}, 0.0)
        assert result == {"gps": HOME}

    def test_empty_sample_becomes_none(self):
        drop = FieldDropFilter(fields=frozenset({"gps"}))
        assert drop.apply({"gps": HOME}, 0.0) is None


class TestChain:
    def test_first_none_wins(self):
        preferences = UserPreferences(quiet_hours=((0.0, 23 * HOUR),))
        chain = PrivacyFilterChain(
            [QuietHoursFilter(preferences), FieldDropFilter(frozenset({"gps"}))]
        )
        assert chain.apply({"gps": HOME}, HOUR) is None

    def test_from_preferences_composition(self):
        preferences = UserPreferences(
            quiet_hours=((1 * HOUR, 2 * HOUR),),
            forbidden_zones=((HOME, 150.0),),
            blur_cell_m=300.0,
        )
        chain = PrivacyFilterChain.from_preferences(preferences)
        # quiet hours dominate
        assert chain.apply({"gps": HOME}, 1.5 * HOUR) is None
        # forbidden zone dominates outside quiet hours
        assert chain.apply({"gps": HOME}, 12 * HOUR) is None
        # elsewhere: blurred but kept
        far = GeoPoint(44.85, -0.55)
        result = chain.apply({"gps": far}, 12 * HOUR)
        assert result is not None
        assert result["gps"] != far
