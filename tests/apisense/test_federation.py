"""Integration tests for Hive federation."""

import pytest

from repro.apisense.federation import HiveFederation
from repro.apisense.hive import Hive
from repro.apisense.honeycomb import Honeycomb
from repro.apisense.tasks import SensingTask
from repro.errors import PlatformError
from repro.mobility.generator import GeneratorConfig, MobilityGenerator
from repro.simulation import Simulator
from repro.units import DAY, HOUR
from tests.apisense.conftest import build_device


@pytest.fixture()
def federation_parts(sensor_suite):
    """Two 4-user communities (different cities/seeds) on one simulator."""
    sim = Simulator()
    federation = HiveFederation()
    populations = []
    for index, seed in enumerate((71, 72)):
        population = MobilityGenerator(
            GeneratorConfig(n_users=4, n_days=1, sampling_period=300.0)
        ).generate(seed=seed)
        populations.append(population)
        hive = Hive(sim, seed=index)
        for device_index in range(4):
            hive.register_device(
                build_device(population, sensor_suite, index=device_index)
            )
        federation.register_hive(f"hive-{index}", hive)
    return sim, federation, populations


def task() -> SensingTask:
    return SensingTask(
        name="fed-task",
        sensors=("gps",),
        sampling_period=600.0,
        upload_period=1800.0,
        end=DAY,
    )


class TestRegistration:
    def test_duplicate_hive_rejected(self, federation_parts):
        _, federation, _ = federation_parts
        with pytest.raises(PlatformError):
            federation.register_hive("hive-0", federation.hive("hive-0"))

    def test_unknown_hive_rejected(self, federation_parts):
        _, federation, _ = federation_parts
        with pytest.raises(PlatformError):
            federation.hive("nope")

    def test_total_devices(self, federation_parts):
        _, federation, _ = federation_parts
        assert federation.total_devices() == 8


class TestSyndication:
    def test_offers_reach_both_communities(self, federation_parts):
        sim, federation, _ = federation_parts
        owner = Honeycomb("lab", federation.hive("hive-0"))
        receipt = federation.syndicate(task(), owner, home="hive-0")
        assert receipt.total_offers == 8
        assert receipt.partner_hives == ("hive-1",)

    def test_data_from_all_communities_routes_to_owner(self, federation_parts):
        sim, federation, populations = federation_parts
        the_task = task()
        owner = Honeycomb("lab", federation.hive("hive-0"))
        federation.syndicate(the_task, owner, home="hive-0")
        sim.run_until(DAY + HOUR)

        collected = owner.mobility_dataset(the_task.name)
        stats = federation.task_stats(the_task.name)
        total_records = sum(records for _, _, records in stats.values())
        assert owner.n_records(the_task.name) == total_records
        if total_records:
            # Users from either community may appear, resolved correctly.
            all_users = set(populations[0].dataset.users) | set(
                populations[1].dataset.users
            )
            assert set(collected.users) <= all_users

    def test_unknown_home_rejected(self, federation_parts):
        _, federation, _ = federation_parts
        owner = Honeycomb("lab", federation.hive("hive-0"))
        with pytest.raises(PlatformError):
            federation.syndicate(task(), owner, home="nope")

    def test_home_in_partners_rejected(self, federation_parts):
        _, federation, _ = federation_parts
        owner = Honeycomb("lab", federation.hive("hive-0"))
        with pytest.raises(PlatformError):
            federation.syndicate(task(), owner, home="hive-0", partners=["hive-0"])

    def test_explicit_partner_subset(self, federation_parts):
        sim, federation, _ = federation_parts
        the_task = task()
        owner = Honeycomb("lab", federation.hive("hive-0"))
        receipt = federation.syndicate(the_task, owner, home="hive-0", partners=[])
        assert receipt.partner_hives == ()
        assert receipt.total_offers == 4
