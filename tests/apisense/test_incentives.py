"""Unit tests for incentive strategies."""

import numpy as np
import pytest

from repro.apisense.incentives import (
    FeedbackIncentive,
    NoIncentive,
    RankingIncentive,
    RewardIncentive,
    UserState,
    WinWinIncentive,
    draw_initial_motivation,
)

ALL_STRATEGIES = [
    NoIncentive(),
    FeedbackIncentive(),
    RankingIncentive(),
    RewardIncentive(),
    WinWinIncentive(),
]


def fresh_community(n: int = 8, motivation: float = 0.5) -> dict[str, UserState]:
    return {
        f"user-{i}": UserState(user=f"user-{i}", motivation=motivation)
        for i in range(n)
    }


@pytest.mark.parametrize("strategy", ALL_STRATEGIES, ids=lambda s: s.name)
class TestCommonContract:
    def test_acceptance_probability_bounds(self, strategy):
        for motivation in (0.0, 0.5, 1.0):
            state = UserState(user="u", motivation=motivation)
            assert 0.05 <= strategy.acceptance_probability(state) <= 0.95

    def test_contribution_counts(self, strategy):
        state = UserState(user="u", motivation=0.5)
        strategy.on_contribution(state, 10)
        assert state.contributions == 1

    def test_motivation_stays_in_bounds(self, strategy):
        state = UserState(user="u", motivation=0.99)
        for _ in range(200):
            strategy.on_contribution(state, 100)
        assert 0.0 <= state.motivation <= 1.0

    def test_day_end_decay_without_contributions(self, strategy):
        community = fresh_community()
        before = np.mean([s.motivation for s in community.values()])
        strategy.on_day_end(community)
        after = np.mean([s.motivation for s in community.values()])
        assert after < before


class TestNoIncentive:
    def test_contributions_earn_nothing(self):
        state = UserState(user="u", motivation=0.5)
        NoIncentive().on_contribution(state, 100)
        assert state.motivation == 0.5
        assert state.credits == 0.0


class TestFeedback:
    def test_boost_saturates(self):
        strategy = FeedbackIncentive()
        state = UserState(user="u", motivation=0.3)
        strategy.on_contribution(state, 10)
        first_boost = state.motivation - 0.3
        for _ in range(50):
            strategy.on_contribution(state, 10)
        before = state.motivation
        strategy.on_contribution(state, 10)
        late_boost = state.motivation - before
        assert late_boost < first_boost


class TestRanking:
    def test_ranks_assigned_on_day_end(self):
        strategy = RankingIncentive()
        community = fresh_community()
        for index, state in enumerate(community.values()):
            strategy.on_contribution(state, n_records=(index + 1) * 10)
        strategy.on_day_end(community)
        ranks = sorted(state.rank for state in community.values())
        assert ranks == list(range(1, len(community) + 1))

    def test_top_quartile_gains_on_bottom(self):
        strategy = RankingIncentive()
        community = fresh_community()
        states = list(community.values())
        strategy.on_contribution(states[0], 1000)  # clear leader
        strategy.on_day_end(community)
        assert states[0].motivation > states[-1].motivation


class TestReward:
    def test_credits_accrue(self):
        strategy = RewardIncentive(credit_per_record=0.05)
        state = UserState(user="u", motivation=0.5)
        strategy.on_contribution(state, 100)
        assert state.credits == pytest.approx(5.0)

    def test_bigger_uploads_bigger_boost(self):
        strategy = RewardIncentive()
        small = UserState(user="a", motivation=0.5)
        large = UserState(user="b", motivation=0.5)
        strategy.on_contribution(small, 1)
        strategy.on_contribution(large, 500)
        assert large.motivation > small.motivation


class TestWinWin:
    def test_motivation_floor_for_contributors(self):
        strategy = WinWinIncentive()
        community = fresh_community(motivation=0.4)
        contributor = community["user-0"]
        strategy.on_contribution(contributor, 10)
        for _ in range(60):  # two months of decay
            strategy.on_day_end(community)
        assert contributor.motivation >= 0.35
        # Non-contributors decay freely (0.4 * 0.985^60 ~ 0.16).
        assert community["user-1"].motivation < 0.2

    def test_retains_better_than_none(self):
        winwin_community = fresh_community(motivation=0.6)
        none_community = fresh_community(motivation=0.6)
        winwin, none = WinWinIncentive(), NoIncentive()
        for day in range(30):
            for state in winwin_community.values():
                winwin.on_contribution(state, 10)
            for state in none_community.values():
                none.on_contribution(state, 10)
            winwin.on_day_end(winwin_community)
            none.on_day_end(none_community)
        mean_winwin = np.mean([s.motivation for s in winwin_community.values()])
        mean_none = np.mean([s.motivation for s in none_community.values()])
        assert mean_winwin > mean_none


class TestInitialMotivation:
    def test_range(self):
        rng = np.random.default_rng(1)
        draws = [draw_initial_motivation(rng) for _ in range(100)]
        assert all(0.35 <= d <= 0.85 for d in draws)
        assert np.std(draws) > 0.05
