"""Unit tests for the v2 Sensing Script API (repro.apisense.scripting).

Timer and facade behaviour is exercised on a real device (the runtime
the crowd actually runs); trigger edge semantics are pinned against the
deterministic synthetic runtime the Honeycomb vets with, where the
trajectory and battery curve are known in closed form.
"""

from __future__ import annotations

import pytest

from repro.apisense.scripting import (
    LegacyHookScript,
    TaskDispatcher,
    TaskScript,
)
from repro.apisense.tasks import SensingTask
from repro.apisense.vetting import DEFAULT_VET_REGION, SyntheticRuntime, dry_run_task
from repro.errors import PlatformError, TaskValidationError
from repro.geo.bbox import BoundingBox
from repro.simulation import Simulator
from repro.units import DAY, HOUR
from tests.apisense.conftest import build_device


class FakeHive:
    def __init__(self):
        self.uploads = []

    def receive_upload(self, device_id, user, task_name, records):
        self.uploads.append((device_id, user, task_name, records))
        return len(records)

    @property
    def n_records(self):
        return sum(len(records) for _, _, _, records in self.uploads)


@pytest.fixture()
def fake_hive() -> FakeHive:
    return FakeHive()


@pytest.fixture()
def bound_device(sim, fake_hive, small_population, sensor_suite):
    device = build_device(small_population, sensor_suite)
    device.bind(sim, fake_hive)
    return device


def v2_task(setup, sensors=("gps", "battery"), **overrides) -> SensingTask:
    defaults = dict(
        name="v2-task",
        sensors=sensors,
        sampling_period=300.0,
        upload_period=3600.0,
        end=DAY,
        script_v2=setup,
    )
    defaults.update(overrides)
    return SensingTask(**defaults)


def synthetic_dispatcher(task, n_ticks=200, seed=0):
    """Dispatcher over the deterministic vetting runtime."""
    sim = Simulator(start_time=task.start)
    runtime = SyntheticRuntime(
        task, sim, window=n_ticks * task.sampling_period, seed=seed
    )
    dispatcher = TaskDispatcher(task, runtime)
    dispatcher.start()
    return sim, runtime, dispatcher


# ----------------------------------------------------------------------
# Timers
# ----------------------------------------------------------------------


class TestTimers:
    def test_timer_fires_at_period_and_saves(self, sim, fake_hive, bound_device):
        def setup(ctx):
            ctx.every(300.0, lambda c: c.save({"gps": c.location.current}))

        task = v2_task(setup, end=6 * HOUR)
        assert bound_device.offer_task(task, 1.0)
        sim.run_until(task.end + task.upload_period)
        stats = bound_device.stats[task.name]
        assert stats.samples_taken == pytest.approx(6 * HOUR / 300.0, rel=0.1)
        assert fake_hive.n_records == stats.samples_taken

    def test_reschedule_from_inside_handler_backs_off(self, sim, bound_device):
        fired = []

        def setup(ctx):
            def tick(c):
                fired.append(c.now)
                if len(fired) == 3:
                    timer.reschedule(1200.0)

            timer = ctx.every(300.0, tick)

        task = v2_task(setup, end=2 * HOUR)
        bound_device.offer_task(task, 1.0)
        sim.run_until(task.end)
        # 3 fires at 300 s, then every 1200 s: 300, 600, 900, 2100, 3300...
        assert fired[:3] == [300.0, 600.0, 900.0]
        assert fired[3] == 2100.0
        assert all(b - a == 1200.0 for a, b in zip(fired[3:], fired[4:]))

    def test_reschedule_from_outside_moves_pending_firing(self, sim, bound_device):
        fired = []
        handles = {}

        def setup(ctx):
            handles["slow"] = ctx.every(1800.0, lambda c: fired.append(c.now))
            ctx.every(
                600.0,
                lambda c: handles["slow"].reschedule(300.0)
                if c.now == 600.0
                else None,
            )

        task = v2_task(setup, end=1 * HOUR)
        bound_device.offer_task(task, 1.0)
        sim.run_until(task.end)
        # Rescheduled at t=600 from another handler: the pending t=1800
        # firing moves to 600+300=900, then every 300 s.
        assert fired[0] == 900.0
        assert fired[1] == 1200.0

    def test_reschedule_below_floor_rejected(self, sim, bound_device):
        problems = []

        def setup(ctx):
            timer = ctx.every(300.0, lambda c: None)
            try:
                timer.reschedule(0.5)
            except PlatformError as error:
                problems.append(error)

        task = v2_task(setup, end=HOUR)
        bound_device.offer_task(task, 1.0)
        assert len(problems) == 1

    def test_cancelled_timer_stops(self, sim, bound_device):
        fired = []

        def setup(ctx):
            def tick(c):
                fired.append(c.now)
                if len(fired) == 2:
                    timer.cancel()

            timer = ctx.every(300.0, tick)

        task = v2_task(setup, end=6 * HOUR)
        bound_device.offer_task(task, 1.0)
        sim.run_until(task.end)
        assert len(fired) == 2

    def test_timers_stop_at_task_end(self, sim, bound_device):
        fired = []

        def setup(ctx):
            ctx.every(300.0, lambda c: fired.append(c.now))

        task = v2_task(setup, end=HOUR)
        bound_device.offer_task(task, 1.0)
        sim.run_until(3 * HOUR)
        assert fired and max(fired) <= task.end

    def test_handler_error_counted_and_contained(self, sim, bound_device):
        def setup(ctx):
            def bad(c):
                raise RuntimeError("handler bug")

            ctx.every(300.0, bad)
            ctx.every(300.0, lambda c: c.save({"battery": c.battery.level}))

        task = v2_task(setup, end=2 * HOUR)
        bound_device.offer_task(task, 1.0)
        sim.run_until(task.end)
        stats = bound_device.stats[task.name]
        assert stats.script_errors > 0
        assert stats.samples_taken > 0  # the healthy handler kept going

    def test_stop_task_cancels_dispatcher(self, sim, bound_device):
        fired = []

        def setup(ctx):
            ctx.every(300.0, lambda c: fired.append(c.now))

        task = v2_task(setup, end=DAY)
        bound_device.offer_task(task, 1.0)
        sim.run_until(HOUR)
        count = len(fired)
        bound_device.stop_task(task.name)
        sim.run_until(4 * HOUR)
        assert len(fired) == count


# ----------------------------------------------------------------------
# Sensor facades
# ----------------------------------------------------------------------


class TestFacades:
    def test_lazy_reads_cost_only_sensors_read(self, sim, fake_hive, small_population, sensor_suite):
        """A script reading only the (free) battery facade drains no
        sampling energy; a legacy task sampling gps+battery does."""
        from tests.apisense.conftest import NO_CHARGE

        lazy = build_device(
            small_population, sensor_suite, index=0, battery_model=NO_CHARGE
        )
        eager = build_device(
            small_population, sensor_suite, index=1, battery_model=NO_CHARGE
        )
        lazy.bind(sim, fake_hive)
        eager.bind(sim, fake_hive)

        def setup(ctx):
            ctx.every(60.0, lambda c: c.save({"battery": c.battery.level}))

        lazy_task = v2_task(setup, name="lazy", sampling_period=60.0, end=12 * HOUR)
        eager_task = SensingTask(
            name="eager",
            sensors=("gps", "battery"),
            sampling_period=60.0,
            upload_period=3600.0,
            end=12 * HOUR,
        )
        assert lazy.offer_task(lazy_task, 1.0)
        assert eager.offer_task(eager_task, 1.0)
        sim.run_until(12 * HOUR)
        # Same tick count, same baseline drain; the eager task paid the
        # per-sample gps cost ~720 times on top.
        assert lazy.battery.level(12 * HOUR) > eager.battery.level(12 * HOUR)
        assert lazy.stats["lazy"].samples_taken > 0

    def test_undeclared_sensor_read_is_a_script_error(self, sim, bound_device):
        """Reading a sensor the task never declared is a script bug:
        counted, surfaced, and (see TestV2Vetting) caught by vetting."""

        def setup(ctx):
            ctx.every(300.0, lambda c: c.network.rssi)

        task = v2_task(setup, sensors=("gps",), end=HOUR)
        bound_device.offer_task(task, 1.0)
        sim.run_until(task.end)
        stats = bound_device.stats[task.name]
        assert stats.script_errors > 0
        assert stats.samples_taken == 0

    def test_battery_refusal_not_a_script_error(self, sim, fake_hive, small_population, sensor_suite):
        from tests.apisense.conftest import NO_CHARGE

        device = build_device(
            small_population, sensor_suite, battery_level=0.0, battery_model=NO_CHARGE
        )
        device.bind(sim, fake_hive)

        def setup(ctx):
            ctx.every(300.0, lambda c: c.save({"gps": c.location.current}))

        task = v2_task(setup, sensors=("gps",), end=2 * HOUR)
        device.offer_task(task, 1.0)
        sim.run_until(task.end)
        stats = device.stats[task.name]
        assert stats.samples_battery_refused > 0
        assert stats.script_errors == 0  # environmental, not a bug

    def test_facade_reads_cached_within_a_tick(self, sim, bound_device):
        reads = []

        def setup(ctx):
            def tick(c):
                first = c.location.current
                second = c.location.current
                reads.append((first, second))

            ctx.every(300.0, tick)

        task = v2_task(setup, end=HOUR)
        bound_device.offer_task(task, 1.0)
        sim.run_until(task.end)
        assert reads
        for first, second in reads:
            assert first is second

    def test_generic_sensor_facade(self, sim, bound_device):
        values = []

        def setup(ctx):
            ctx.every(300.0, lambda c: values.append(c.sensor("battery").read()))

        task = v2_task(setup, end=HOUR)
        bound_device.offer_task(task, 1.0)
        sim.run_until(task.end)
        assert values and all(isinstance(v, float) for v in values)


# ----------------------------------------------------------------------
# Triggers (deterministic synthetic runtime)
# ----------------------------------------------------------------------


class TestTriggers:
    def test_battery_below_fires_once_per_excursion(self):
        events = []

        def setup(ctx):
            ctx.on_battery_below(0.5, lambda c: events.append(c.event))

        task = v2_task(setup)
        sim, runtime, dispatcher = synthetic_dispatcher(task, n_ticks=200)
        sim.run_until(task.start + 200 * task.sampling_period)
        # The synthetic battery ramps 1.0 -> 0.05 monotonically: exactly
        # one crossing, one firing.
        assert len(events) == 1
        assert events[0].kind == "battery_below"
        assert events[0].value < 0.5

    def test_location_changed_fires_on_movement(self):
        small, huge = [], []

        def setup(ctx):
            ctx.on_location_changed(100.0, lambda c: small.append(c.event))
            ctx.on_location_changed(1e7, lambda c: huge.append(c.event))

        task = v2_task(setup)
        sim, runtime, dispatcher = synthetic_dispatcher(task, n_ticks=200)
        sim.run_until(task.start + 200 * task.sampling_period)
        assert len(small) > 10  # the synthetic walk sweeps the box
        assert huge == []  # the planet-sized threshold never trips

    def test_geofence_enter_and_exit_edges(self):
        entered, exited = [], []
        box = DEFAULT_VET_REGION
        # Northern third of the vetting box: the Lissajous sweep crosses
        # its southern edge several times.
        fence = BoundingBox(
            south=box.north - (box.north - box.south) / 3.0,
            west=box.west,
            north=box.north,
            east=box.east,
        )

        def setup(ctx):
            ctx.on_region_enter(fence, lambda c: entered.append(c.now))
            ctx.on_region_exit(fence, lambda c: exited.append(c.now))

        task = v2_task(setup)
        sim, runtime, dispatcher = synthetic_dispatcher(task, n_ticks=200)
        sim.run_until(task.start + 200 * task.sampling_period)
        assert entered and exited
        # Edges alternate: between two enters there is an exit.
        merged = sorted((t, "in") for t in entered) + sorted((t, "out") for t in exited)
        merged.sort()
        kinds = [kind for _, kind in merged]
        assert all(a != b for a, b in zip(kinds, kinds[1:]))

    def test_trigger_handler_receives_payload(self):
        payloads = []

        def setup(ctx):
            ctx.on_location_changed(100.0, lambda c: payloads.append(c.event.value))

        task = v2_task(setup)
        sim, runtime, dispatcher = synthetic_dispatcher(task, n_ticks=50)
        sim.run_until(task.start + 50 * task.sampling_period)
        assert payloads
        assert all(task.region is None or task.region.contains(p) for p in payloads)

    def test_trigger_validation(self):
        task = v2_task(lambda ctx: None)
        sim, runtime, dispatcher = synthetic_dispatcher(task)
        with pytest.raises(PlatformError):
            dispatcher.ctx.on_battery_below(1.5, lambda c: None)
        with pytest.raises(PlatformError):
            dispatcher.ctx.on_location_changed(-5.0, lambda c: None)


# ----------------------------------------------------------------------
# TaskScript classes and adaptive composition
# ----------------------------------------------------------------------


class AdaptiveScript(TaskScript):
    """Backs sampling off 4x when the battery drops below threshold."""

    def __init__(self, base_period: float = 300.0, threshold: float = 0.5):
        self.base_period = base_period
        self.threshold = threshold
        self.timer = None
        self.backed_off_at = None

    def setup(self, ctx):
        self.timer = ctx.every(self.base_period, self._sample)
        ctx.on_battery_below(self.threshold, self._back_off)

    def _sample(self, ctx):
        ctx.save({"battery": ctx.battery.level})

    def _back_off(self, ctx):
        self.backed_off_at = ctx.now
        self.timer.reschedule(self.base_period * 4)


class TestTaskScriptClasses:
    def test_adaptive_script_backs_off(self):
        script = AdaptiveScript(base_period=300.0, threshold=0.5)
        task = v2_task(script)
        sim, runtime, dispatcher = synthetic_dispatcher(task, n_ticks=200)
        window = 200 * task.sampling_period
        sim.run_until(task.start + window)
        assert script.backed_off_at is not None
        # Sampling at 300 s for the first half, 1200 s after: clearly
        # fewer saves than the non-adaptive 200, clearly more than the
        # fully-backed-off 50.
        assert 50 < runtime.stats.samples_taken < 200

    def test_setup_error_counted(self, sim, bound_device):
        def broken_setup(ctx):
            raise ValueError("bad setup")

        task = v2_task(broken_setup, end=HOUR)
        bound_device.offer_task(task, 1.0)
        sim.run_until(task.end)
        stats = bound_device.stats[task.name]
        assert stats.script_errors == 1
        assert stats.samples_taken == 0

    def test_legacy_adapter_is_a_task_script(self):
        assert isinstance(LegacyHookScript(None), TaskScript)


# ----------------------------------------------------------------------
# Builder and validation
# ----------------------------------------------------------------------


class TestBuilder:
    def test_fluent_chain(self):
        fence = BoundingBox(south=44.8, west=-0.62, north=44.85, east=-0.55)
        task = (
            SensingTask.builder("noise")
            .sensors("gps", "network")
            .every(30)
            .upload_every(1800)
            .window(0, 2 * DAY)
            .region(fence)
            .build()
        )
        assert task.name == "noise"
        assert task.sensors == ("gps", "network")
        assert task.sampling_period == 30.0
        assert task.upload_period == 1800.0
        assert task.end == 2 * DAY
        assert task.region == fence

    def test_region_from_four_floats(self):
        task = (
            SensingTask.builder("t")
            .sensors("gps")
            .region(44.8, -0.62, 44.85, -0.55)
            .build()
        )
        assert task.region == BoundingBox(44.8, -0.62, 44.85, -0.55)

    def test_region_bad_arity_rejected(self):
        with pytest.raises(TaskValidationError):
            SensingTask.builder("t").sensors("gps").region(44.8, -0.62).build()

    def test_builder_attaches_v2_script(self):
        def setup(ctx):
            ctx.every(60.0, lambda c: None)

        task = SensingTask.builder("t").sensors("gps").script(setup).build()
        assert task.script_v2 is setup

    def test_builder_validates(self):
        with pytest.raises(TaskValidationError):
            SensingTask.builder("t").build()  # no sensors

    def test_both_behaviour_styles_rejected(self):
        with pytest.raises(TaskValidationError):
            SensingTask(
                name="t",
                sensors=("gps",),
                script=lambda values: values,
                script_v2=lambda ctx: None,
            )

    def test_non_script_v2_rejected(self):
        with pytest.raises(TaskValidationError):
            SensingTask(name="t", sensors=("gps",), script_v2="not-a-script")  # type: ignore[arg-type]


# ----------------------------------------------------------------------
# Sensor registry
# ----------------------------------------------------------------------


class TestSensorRegistry:
    def test_custom_suite_sensor_becomes_requestable(self, test_city, rng):
        from repro.apisense.sensors import (
            Sensor,
            SensorSuite,
            default_sensor_suite,
            sensor_registry,
        )

        class Co2Sensor(Sensor):
            name = "co2"

            def read(self, device, time, rng):
                return 400.0

        base = default_sensor_suite(test_city, rng)
        assert "co2" not in sensor_registry
        with pytest.raises(TaskValidationError):
            SensingTask(name="t", sensors=("co2",))
        SensorSuite(sensors={**base.sensors, "co2": Co2Sensor()})
        assert "co2" in sensor_registry
        task = SensingTask(name="t", sensors=("co2",))
        assert task.sensors == ("co2",)

    def test_unknown_sensor_still_rejected(self):
        with pytest.raises(TaskValidationError) as error:
            SensingTask(name="t", sensors=("tricorder",))
        assert "tricorder" in str(error.value)

    def test_registry_rejects_bad_names(self):
        from repro.apisense.sensors import SensorRegistry

        registry = SensorRegistry()
        with pytest.raises(PlatformError):
            registry.register("")


# ----------------------------------------------------------------------
# Vetting the v2 lifecycle
# ----------------------------------------------------------------------


class TestV2Vetting:
    def test_v2_script_vets_with_per_handler_stats(self):
        script = AdaptiveScript(base_period=300.0, threshold=0.5)
        report = dry_run_task(v2_task(script), n_samples=200)
        assert report.acceptable()
        assert report.saves > 0
        kinds = {handler.kind for handler in report.handlers}
        assert kinds == {"timer", "battery_below"}
        assert all(h.fires > 0 for h in report.handlers)

    def test_v2_setup_crash_rejected(self):
        def broken(ctx):
            raise ValueError("bad setup")

        report = dry_run_task(v2_task(broken))
        assert report.setup_error is not None
        assert not report.acceptable()

    def test_undeclared_sensor_read_rejected_by_vetting(self):
        """A script reading beyond its declared sensors collects nothing
        fleet-wide; vetting must reject it, not wave it through."""

        def setup(ctx):
            ctx.every(300.0, lambda c: c.save({"rssi": c.network.rssi}))

        report = dry_run_task(v2_task(setup, sensors=("gps",)))
        assert report.error_rate == 1.0
        assert not report.acceptable()
        assert any("did not declare" in message for message in report.error_messages)

    def test_v2_crashing_handler_rejected(self):
        def setup(ctx):
            def bad(c):
                raise RuntimeError("boom")

            ctx.every(300.0, bad)

        report = dry_run_task(v2_task(setup))
        assert report.error_rate == 1.0
        assert not report.acceptable()

    def test_region_task_vetted_inside_its_fence(self):
        fence = BoundingBox(south=40.0, west=2.0, north=40.1, east=2.1)
        outside = []

        def check_inside(values):
            if not fence.contains(values["gps"]):
                outside.append(values["gps"])
                return None
            return values

        task = SensingTask(
            name="fenced", sensors=("gps",), region=fence, script=check_inside
        )
        report = dry_run_task(task, n_samples=100)
        assert outside == []
        assert report.drop_rate == 0.0

    def test_deploy_vets_v2_scripts(self, sim, hive):
        from repro.apisense.honeycomb import Honeycomb

        def broken(ctx):
            def bad(c):
                raise RuntimeError("kaput")

            ctx.every(60.0, bad)

        honeycomb = Honeycomb("lab", hive)
        with pytest.raises(TaskValidationError):
            honeycomb.deploy(v2_task(broken, name="kaput"), vet=True)
        honeycomb.deploy(
            v2_task(AdaptiveScript(), name="fine"), vet=True
        )
        assert len(honeycomb.tasks) == 1


# ----------------------------------------------------------------------
# Quiet hours and region gating for v2 timers
# ----------------------------------------------------------------------


class TestGating:
    def test_quiet_hours_suppress_v2_timers(self, sim, fake_hive, small_population, sensor_suite):
        from repro.apisense.preferences import UserPreferences

        device = build_device(
            small_population,
            sensor_suite,
            preferences=UserPreferences(quiet_hours=((0.0, 23 * HOUR),)),
        )
        device.bind(sim, fake_hive)

        def setup(ctx):
            ctx.every(300.0, lambda c: c.save({"battery": c.battery.level}))

        task = v2_task(setup, end=12 * HOUR)
        device.offer_task(task, 1.0)
        sim.run_until(12 * HOUR)
        stats = device.stats[task.name]
        assert stats.samples_taken == 0
        assert stats.samples_filtered > 0

    def test_region_fence_gates_v2_timers(self, sim, bound_device):
        far = BoundingBox(south=10.0, west=10.0, north=11.0, east=11.0)

        def setup(ctx):
            ctx.every(300.0, lambda c: c.save({"gps": c.location.current}))

        task = v2_task(setup, end=6 * HOUR, region=far)
        bound_device.offer_task(task, 1.0)
        sim.run_until(task.end)
        assert bound_device.stats[task.name].samples_taken == 0

    def test_region_fence_gates_trigger_driven_saves(self, sim, bound_device):
        """Trigger handlers may *fire* outside the fence, but their
        saves are dropped — the v1 'collect only inside' invariant."""
        far = BoundingBox(south=10.0, west=10.0, north=11.0, east=11.0)
        fired = []

        def setup(ctx):
            def on_move(c):
                fired.append(c.now)
                c.save({"gps": c.event.value})

            ctx.on_location_changed(10.0, on_move)

        task = v2_task(setup, end=6 * HOUR, region=far)
        bound_device.offer_task(task, 1.0)
        sim.run_until(task.end)
        assert fired  # the device moved, the trigger fired...
        assert bound_device.stats[task.name].samples_taken == 0  # ...fenced
