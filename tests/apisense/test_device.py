"""Unit tests for the device task runtime.

Device behaviour is tested against a minimal fake Hive so the unit under
test is the device alone; the real Hive wiring is covered by
``test_hive.py`` and the campaign integration tests.
"""

import pytest

from repro.apisense.preferences import UserPreferences
from repro.apisense.tasks import SensingTask
from repro.errors import PlatformError
from repro.units import DAY, HOUR
from tests.apisense.conftest import build_device


class FakeHive:
    """Collects uploads like the real Hive would."""

    def __init__(self):
        self.uploads = []

    def receive_upload(self, device_id, user, task_name, records):
        self.uploads.append((device_id, user, task_name, records))

    @property
    def n_records(self):
        return sum(len(records) for _, _, _, records in self.uploads)


def gps_task(**overrides) -> SensingTask:
    defaults = dict(
        name="gps-task",
        sensors=("gps",),
        sampling_period=300.0,
        upload_period=3600.0,
        start=0.0,
        end=DAY,
    )
    defaults.update(overrides)
    return SensingTask(**defaults)


@pytest.fixture()
def fake_hive() -> FakeHive:
    return FakeHive()


@pytest.fixture()
def bound_device(sim, fake_hive, small_population, sensor_suite):
    device = build_device(small_population, sensor_suite)
    device.bind(sim, fake_hive)
    return device


class TestOfferLogic:
    def test_unbound_device_rejects_offer(self, small_population, sensor_suite):
        device = build_device(small_population, sensor_suite)
        with pytest.raises(PlatformError):
            device.offer_task(gps_task(), 1.0)

    def test_accepts_with_probability_one(self, bound_device):
        assert bound_device.offer_task(gps_task(), 1.0)
        assert "gps-task" in bound_device.running_tasks

    def test_declines_with_probability_zero(self, bound_device):
        assert not bound_device.offer_task(gps_task(), 0.0)

    def test_declines_forbidden_sensor(self, sim, fake_hive, small_population, sensor_suite):
        device = build_device(
            small_population,
            sensor_suite,
            preferences=UserPreferences(allowed_sensors=frozenset({"battery"})),
        )
        device.bind(sim, fake_hive)
        assert not device.offer_task(gps_task(), 1.0)

    def test_duplicate_task_rejected(self, bound_device):
        bound_device.offer_task(gps_task(), 1.0)
        with pytest.raises(PlatformError):
            bound_device.offer_task(gps_task(), 1.0)


class TestSamplingLoop:
    def test_samples_at_requested_rate(self, sim, bound_device):
        task = gps_task(end=6 * HOUR)
        bound_device.offer_task(task, 1.0)
        sim.run_until(task.end + task.upload_period)
        stats = bound_device.stats[task.name]
        expected = 6 * HOUR / task.sampling_period
        assert stats.samples_taken == pytest.approx(expected, rel=0.1)

    def test_uploads_batched_by_period(self, sim, fake_hive, bound_device):
        task = gps_task(end=6 * HOUR, upload_period=3600.0)
        bound_device.offer_task(task, 1.0)
        sim.run_until(task.end + task.upload_period)
        # ~6 hourly uploads, each ~12 samples (300 s period).
        assert 5 <= len(fake_hive.uploads) <= 7
        assert fake_hive.n_records == bound_device.stats[task.name].samples_taken

    def test_records_carry_gps_values(self, sim, fake_hive, bound_device):
        from repro.geo.point import GeoPoint

        task = gps_task(end=2 * HOUR)
        bound_device.offer_task(task, 1.0)
        sim.run_until(task.end + task.upload_period)
        for _, _, _, records in fake_hive.uploads:
            for record in records:
                assert isinstance(record.values["gps"], GeoPoint)
                assert record.task == task.name

    def test_script_filters_and_errors_counted(self, sim, bound_device):
        calls = {"n": 0}

        def flaky_script(values):
            calls["n"] += 1
            if calls["n"] % 5 == 0:
                raise RuntimeError("script bug")
            if calls["n"] % 2 == 0:
                return None
            return values

        task = gps_task(end=6 * HOUR, script=flaky_script)
        bound_device.offer_task(task, 1.0)
        sim.run_until(6 * HOUR)
        stats = bound_device.stats[task.name]
        assert stats.script_errors > 0
        assert stats.samples_script_dropped > 0
        assert stats.samples_taken > 0

    def test_quiet_hours_suppress_samples(self, sim, fake_hive, small_population, sensor_suite):
        preferences = UserPreferences(quiet_hours=((0.0, 23 * HOUR),))
        device = build_device(small_population, sensor_suite, preferences=preferences)
        device.bind(sim, fake_hive)
        task = gps_task(end=12 * HOUR)
        device.offer_task(task, 1.0)
        sim.run_until(12 * HOUR)
        stats = device.stats[task.name]
        assert stats.samples_taken == 0
        assert stats.samples_filtered > 0

    def test_region_fence_limits_sampling(self, sim, bound_device, small_population):
        # A fence far from the city: nothing should be sampled.
        from repro.geo.bbox import BoundingBox

        region = BoundingBox(south=10.0, west=10.0, north=11.0, east=11.0)
        task = gps_task(end=6 * HOUR, region=region)
        bound_device.offer_task(task, 1.0)
        sim.run_until(6 * HOUR)
        assert bound_device.stats[task.name].samples_taken == 0

    def test_dead_battery_refuses_samples(self, sim, fake_hive, small_population, sensor_suite):
        from tests.apisense.conftest import NO_CHARGE

        device = build_device(
            small_population, sensor_suite, battery_level=0.0, battery_model=NO_CHARGE
        )
        device.bind(sim, fake_hive)
        task = gps_task(end=4 * HOUR)
        device.offer_task(task, 1.0)
        sim.run_until(4 * HOUR)
        stats = device.stats[task.name]
        assert stats.samples_taken == 0
        assert stats.samples_battery_refused > 0

    def test_stop_task_flushes_and_cancels(self, sim, fake_hive, bound_device):
        task = gps_task(end=DAY)
        bound_device.offer_task(task, 1.0)
        sim.run_until(2 * HOUR)
        taken_before = bound_device.stats[task.name].samples_taken
        bound_device.stop_task(task.name)
        assert "gps-task" not in bound_device.running_tasks
        assert fake_hive.n_records == taken_before  # flush delivered buffer
        sim.run_until(6 * HOUR)
        assert bound_device.stats[task.name].samples_taken == taken_before


class TestDirectReads:
    def test_read_sensor_costs_energy(self, sim, bound_device):
        level_before = bound_device.battery.level(sim.now)
        bound_device.read_sensor("gps", 8 * HOUR)
        assert bound_device.battery.level(8 * HOUR) < level_before

    def test_read_sensor_dead_battery_raises(self, sim, fake_hive, small_population, sensor_suite):
        from tests.apisense.conftest import NO_CHARGE

        device = build_device(
            small_population, sensor_suite, battery_level=0.0, battery_model=NO_CHARGE
        )
        device.bind(sim, fake_hive)
        with pytest.raises(PlatformError):
            device.read_sensor("gps", 12 * HOUR)

    def test_availability(self, sim, fake_hive, small_population, sensor_suite):
        device = build_device(small_population, sensor_suite, battery_level=1.0)
        device.bind(sim, fake_hive)
        assert device.is_available(12 * HOUR)
        quiet = build_device(
            small_population,
            sensor_suite,
            index=1,
            preferences=UserPreferences(quiet_hours=((0.0, 23.9 * HOUR),)),
        )
        quiet.bind(sim, fake_hive)
        assert not quiet.is_available(12 * HOUR)
