"""Unit tests for platform health monitoring."""

import pytest

from repro.apisense import Campaign, CampaignConfig, SensingTask
from repro.apisense.monitoring import snapshot
from repro.units import DAY, HOUR


@pytest.fixture(scope="module")
def mid_campaign(small_population):
    campaign = Campaign(
        small_population, config=CampaignConfig(n_days=1, seed=21)
    )
    campaign.deploy(
        SensingTask(
            name="watched",
            sensors=("gps",),
            sampling_period=300.0,
            upload_period=1800.0,
            end=DAY,
        )
    )
    campaign.sim.run_until(6 * HOUR)  # mid-campaign, not finished
    return campaign


class TestSnapshot:
    def test_device_counts(self, mid_campaign):
        report = snapshot(mid_campaign.hive, mid_campaign.sim.now)
        assert report.devices == 5
        assert 0 <= report.running_devices <= 5

    def test_battery_and_motivation_bounds(self, mid_campaign):
        report = snapshot(mid_campaign.hive, mid_campaign.sim.now)
        assert 0.0 <= report.mean_battery <= 1.0
        assert 0.0 <= report.mean_motivation <= 1.0
        assert 0 <= report.low_battery_devices <= report.devices
        assert 0 <= report.at_risk_users <= report.devices

    def test_task_progress_tracked(self, mid_campaign):
        report = snapshot(mid_campaign.hive, mid_campaign.sim.now)
        assert len(report.tasks) == 1
        task = report.tasks[0]
        assert task.task == "watched"
        assert task.offers == 5
        if task.acceptances:
            assert task.records >= 0
            assert 0.0 < task.acceptance_rate <= 1.0

    def test_to_text_renders_everything(self, mid_campaign):
        report = snapshot(mid_campaign.hive, mid_campaign.sim.now)
        text = report.to_text()
        assert "platform health" in text
        assert "devices: 5" in text
        assert "task watched" in text
        assert "transport" in text

    def test_empty_hive(self):
        from repro.apisense.hive import Hive
        from repro.simulation import Simulator

        report = snapshot(Hive(Simulator()), 0.0)
        assert report.devices == 0
        assert report.mean_battery == 0.0
        assert report.tasks == ()

    def test_backpressure_counters_rendered(self, mid_campaign):
        report = snapshot(mid_campaign.hive, mid_campaign.sim.now)
        text = report.to_text()
        assert "backpressure:" in text
        assert "dropped" in text and "rejected" in text and "spilled" in text
        assert report.pipeline_shed == report.pipeline_dropped + report.pipeline_rejected

    def test_spilled_counter_tracks_pipeline(self):
        """A tiny reject-policy gateway sheds records, and the snapshot
        shows operators the loss without reaching into the pipeline."""
        from repro.apisense.device import SensorRecord
        from repro.apisense.hive import Hive
        from repro.simulation import Simulator
        from repro.store import DatasetStore, IngestPipeline

        sim = Simulator()
        store = DatasetStore(n_shards=1)
        pipeline = IngestPipeline(
            sim, store, policy="reject", buffer_capacity=2, flush_delay=10.0
        )
        hive = Hive(sim, pipeline=pipeline)
        records = [
            SensorRecord(
                device_id="d", user="u", task="t", time=float(i), values={}
            )
            for i in range(5)
        ]
        pipeline.submit(records)  # bounces: batch exceeds capacity
        pipeline.submit(records[:2])
        report = snapshot(hive, sim.now)
        assert report.pipeline_rejected == 5
        assert report.pipeline_spilled == pipeline.stats.spilled == 0
        assert report.pipeline_shed == 5
        assert "5 rejected" in report.to_text()


class TestBackpressureReconciliation:
    """Regression: the dashboard's backpressure totals reconcile with
    records admitted — accepted = store + dropped + buffered + backlog,
    with every record in at most one shed/parked counter."""

    def test_mid_campaign_snapshot_reconciles(self, mid_campaign):
        report = snapshot(mid_campaign.hive, mid_campaign.sim.now)
        assert report.pipeline_unaccounted == 0
        assert "unaccounted" in report.to_text()

    def test_reconciles_under_drop_oldest_overload(self):
        from repro.apisense.device import SensorRecord
        from repro.apisense.hive import Hive
        from repro.simulation import Simulator
        from repro.store import DatasetStore, IngestPipeline

        sim = Simulator()
        store = DatasetStore(n_shards=1)
        pipeline = IngestPipeline(
            sim, store, policy="drop-oldest", buffer_capacity=4, flush_delay=10.0
        )
        hive = Hive(sim, pipeline=pipeline)

        class _Owner:
            def receive_dataset(self, task, batch):
                pass

        from repro.apisense.tasks import SensingTask

        hive.adopt_task(
            SensingTask(name="t", sensors=("gps",), sampling_period=60.0), _Owner()
        )
        records = [
            SensorRecord(device_id="d", user="u", task="t", time=float(i), values={})
            for i in range(11)
        ]
        hive.receive_upload("d", "u", "t", records)  # giant batch: head evicted
        report = snapshot(hive, sim.now)
        assert report.pipeline_accepted == 11
        assert report.pipeline_dropped == 7
        assert report.pipeline_unaccounted == 0
        sim.run()
        pipeline.flush_all()
        report = snapshot(hive, sim.now)
        assert report.pipeline_unaccounted == 0
        assert report.store_records == 4
