"""Unit tests for recruitment policies."""

import numpy as np
import pytest

from repro.apisense.battery import Battery, BatteryModel
from repro.apisense.preferences import UserPreferences
from repro.apisense.recruitment import (
    AllDevices,
    BatteryFloorRecruitment,
    QuotaRecruitment,
    RegionRecruitment,
    SensorCapabilityRecruitment,
)
from repro.apisense.tasks import SensingTask
from repro.errors import PlatformError
from repro.geo.bbox import BoundingBox
from repro.units import HOUR
from tests.apisense.conftest import build_device

TASK = SensingTask(name="t", sensors=("gps",), sampling_period=300.0)


@pytest.fixture()
def fleet(small_population, sensor_suite):
    return [
        build_device(small_population, sensor_suite, index=i)
        for i in range(len(small_population.dataset))
    ]


class TestAllDevices:
    def test_passthrough(self, fleet, rng):
        assert AllDevices().select(fleet, TASK, 0.0, rng) == fleet


class TestRegion:
    def test_far_region_empty(self, fleet, rng):
        region = BoundingBox(south=10.0, west=10.0, north=11.0, east=11.0)
        assert RegionRecruitment(region).select(fleet, TASK, 12 * HOUR, rng) == []

    def test_city_region_keeps_all(self, fleet, rng, small_population):
        region = small_population.city.bounding_box
        selected = RegionRecruitment(region).select(fleet, TASK, 12 * HOUR, rng)
        assert len(selected) == len(fleet)

    def test_falls_back_to_task_region(self, fleet, rng, small_population):
        task = SensingTask(
            name="r",
            sensors=("gps",),
            sampling_period=300.0,
            region=small_population.city.bounding_box,
        )
        assert len(RegionRecruitment().select(fleet, task, 12 * HOUR, rng)) == len(fleet)

    def test_no_region_anywhere_passes_all(self, fleet, rng):
        assert RegionRecruitment().select(fleet, TASK, 0.0, rng) == fleet


class TestBatteryFloor:
    def test_validation(self):
        with pytest.raises(PlatformError):
            BatteryFloorRecruitment(min_level=1.5)

    def test_filters_weak_batteries(self, fleet, rng):
        fleet[0].battery = Battery(
            BatteryModel(charge_per_hour=0.0), level=0.1, time=12 * HOUR
        )
        selected = BatteryFloorRecruitment(0.3).select(fleet, TASK, 12 * HOUR, rng)
        assert fleet[0] not in selected
        assert len(selected) == len(fleet) - 1


class TestQuota:
    def test_validation(self):
        with pytest.raises(PlatformError):
            QuotaRecruitment(0)

    def test_caps_size(self, fleet, rng):
        selected = QuotaRecruitment(2).select(fleet, TASK, 0.0, rng)
        assert len(selected) == 2
        assert all(device in fleet for device in selected)

    def test_small_fleet_untouched(self, fleet, rng):
        assert len(QuotaRecruitment(100).select(fleet, TASK, 0.0, rng)) == len(fleet)

    def test_sampling_varies_with_rng(self, fleet):
        a = QuotaRecruitment(2).select(fleet, TASK, 0.0, np.random.default_rng(1))
        b = QuotaRecruitment(2).select(fleet, TASK, 0.0, np.random.default_rng(9))
        ids_a = [d.device_id for d in a]
        ids_b = [d.device_id for d in b]
        assert ids_a != ids_b  # different seeds, different panels (w.h.p.)


class TestCapability:
    def test_filters_opted_out_users(self, small_population, sensor_suite, rng):
        devices = [
            build_device(small_population, sensor_suite, index=0),
            build_device(
                small_population,
                sensor_suite,
                index=1,
                preferences=UserPreferences(allowed_sensors=frozenset({"battery"})),
            ),
        ]
        selected = SensorCapabilityRecruitment().select(devices, TASK, 0.0, rng)
        assert len(selected) == 1
        assert selected[0] is devices[0]


class TestComposition:
    def test_and_composes(self, fleet, rng):
        fleet[0].battery = Battery(
            BatteryModel(charge_per_hour=0.0), level=0.1, time=12 * HOUR
        )
        policy = BatteryFloorRecruitment(0.3) & QuotaRecruitment(2)
        selected = policy.select(fleet, TASK, 12 * HOUR, rng)
        assert len(selected) == 2
        assert fleet[0] not in selected
        assert "battery-floor&quota" == policy.name


class TestHiveIntegration:
    def test_publish_with_quota(self, sim, hive, small_population, sensor_suite):
        for index in range(5):
            hive.register_device(build_device(small_population, sensor_suite, index=index))

        class Owner:
            def receive_dataset(self, task_name, records):
                pass

        hive.publish_task(TASK, owner=Owner(), recruitment=QuotaRecruitment(2))
        assert hive.stats.per_task["t"].offers == 2
