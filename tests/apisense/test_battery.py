"""Unit tests for the battery model."""

import pytest

from repro.apisense.battery import Battery, BatteryModel
from repro.errors import PlatformError
from repro.units import DAY, HOUR


class TestBatteryModel:
    def test_charging_window_wraps_midnight(self):
        model = BatteryModel()
        assert model.is_charging_time(23 * HOUR)
        assert model.is_charging_time(2 * HOUR)
        assert not model.is_charging_time(12 * HOUR)

    def test_non_wrapping_window(self):
        model = BatteryModel(charge_window=(8 * HOUR, 10 * HOUR))
        assert model.is_charging_time(9 * HOUR)
        assert not model.is_charging_time(11 * HOUR)

    def test_cost_of_sensor_set(self):
        model = BatteryModel()
        assert model.cost_of(("gps",)) > model.cost_of(("battery",))
        assert model.cost_of(("gps", "network")) == pytest.approx(
            model.cost_of(("gps",)) + model.cost_of(("network",))
        )

    def test_unknown_sensor_gets_default_cost(self):
        assert BatteryModel().cost_of(("mystery",)) > 0


class TestBattery:
    def test_initial_level_validated(self):
        with pytest.raises(PlatformError):
            Battery(BatteryModel(), level=1.5)

    def test_baseline_drain_during_day(self):
        battery = Battery(BatteryModel(), level=1.0, time=8 * HOUR)
        level = battery.level(16 * HOUR)  # 8 daytime hours
        assert level == pytest.approx(1.0 - 8 * 0.01, abs=0.005)

    def test_night_charging_restores(self):
        battery = Battery(BatteryModel(), level=0.2, time=22 * HOUR)
        assert battery.level(26 * HOUR) == 1.0  # 4 h at 0.5/h, capped

    def test_level_clamped_to_zero(self):
        model = BatteryModel(baseline_drain_per_hour=0.5)
        battery = Battery(model, level=0.1, time=8 * HOUR)
        assert battery.level(20 * HOUR) == 0.0
        assert battery.is_empty(20 * HOUR)

    def test_time_travel_rejected(self):
        battery = Battery(BatteryModel(), level=1.0, time=100.0)
        battery.level(200.0)
        with pytest.raises(PlatformError):
            battery.level(50.0)

    def test_drain_sample_costs_energy(self):
        battery = Battery(BatteryModel(), level=0.5, time=8 * HOUR)
        before = battery.level(8 * HOUR)
        assert battery.drain_sample(("gps",), 8 * HOUR)
        after = battery.level(8 * HOUR)
        assert after == pytest.approx(before - BatteryModel().cost_of(("gps",)))

    def test_drain_sample_refused_when_empty(self):
        battery = Battery(BatteryModel(), level=0.0, time=12 * HOUR)
        assert not battery.drain_sample(("gps",), 12 * HOUR)

    def test_daily_cycle_sustainable(self):
        # A device sampling GPS every minute all day must survive with
        # night charging: drain ~0.01*15h + 1440*2e-5 < charge capacity.
        battery = Battery(BatteryModel(), level=1.0, time=0.0)
        time = 0.0
        for day in range(3):
            for minute in range(1440):
                time = day * DAY + minute * 60.0
                battery.drain_sample(("gps",), time)
        assert battery.level(time) > 0.3
