"""Store-and-forward under deterministic loss: retried, delivered once.

The lossy-campaign tests show the *statistical* consequence of the
device's store-and-forward buffer (volume survives loss); these tests
pin the *mechanism* with a scripted transport: records buffered through
a lost upload are retried at the next upload tick and arrive exactly
once — loss costs freshness, not data, and never duplicates.
"""

from __future__ import annotations

from repro.apisense.hive import Hive
from repro.apisense.honeycomb import Honeycomb
from repro.apisense.tasks import SensingTask
from repro.apisense.transport import Transport
from repro.simulation import Simulator
from repro.units import HOUR
from tests.apisense.conftest import build_device


class ScriptedLossTransport(Transport):
    """A transport that loses exactly the sends whose index is scripted.

    Indices count every message through the Hive's channel; the tests
    publish with an empty recruitment so no offer rides the transport
    and send #0 is the device's first upload.
    """

    def __init__(self, lose: set[int], latency: float = 0.05):
        super().__init__(latency_mean=latency, latency_jitter=0.0, loss=0.0, seed=0)
        self._lose = lose
        self._sends = 0

    def send(self, sim, deliver, payload_items: int = 1) -> bool:
        index = self._sends
        self._sends += 1
        self.stats.messages_sent += 1
        self.stats.payload_items += payload_items
        if index in self._lose:
            self.stats.messages_lost += 1
            return False
        sim.schedule(self.latency_mean, deliver)
        return True


TASK = SensingTask(
    name="saf",
    sensors=("gps",),
    sampling_period=300.0,
    upload_period=1800.0,
    end=2 * HOUR,
)


class _Nobody:
    """Recruitment policy offering the task to no device."""

    def select(self, devices, task, now, rng):
        return []


def run_with_losses(small_population, sensor_suite, lose: set[int]):
    """One device, one task, scripted upload losses; returns the pieces."""
    sim = Simulator()
    transport = ScriptedLossTransport(lose)
    hive = Hive(sim, transport=transport, seed=3)
    device = build_device(small_population, sensor_suite, index=0)
    hive.register_device(device)
    honeycomb = Honeycomb("lab", hive)
    # No transport-borne offer: the device accepts directly, so upload
    # send indices are deterministic (first upload is send #0).
    honeycomb.deploy(TASK, recruitment=_Nobody())
    assert device.offer_task(TASK, acceptance_probability=1.0)
    sim.run_until(TASK.end + 2 * TASK.upload_period)
    return sim, device, honeycomb, transport


class TestStoreAndForward:
    def test_lossless_baseline_delivers_everything(self, small_population, sensor_suite):
        _, device, honeycomb, _ = run_with_losses(small_population, sensor_suite, set())
        stats = device.stats["saf"]
        assert stats.samples_taken > 0
        assert stats.uploads_failed == 0
        assert honeycomb.n_records("saf") == stats.samples_taken

    def test_buffered_records_survive_a_lost_upload(self, small_population, sensor_suite):
        # Send #0 is the first upload tick -> lose it.
        _, device, honeycomb, transport = run_with_losses(
            small_population, sensor_suite, lose={0}
        )
        stats = device.stats["saf"]
        assert transport.stats.messages_lost == 1
        assert stats.uploads_failed == 1
        assert stats.uploads >= 1  # the retry went through
        # Exactly once: every sample taken reached the Honeycomb, and no
        # record was duplicated by the retry.
        records = honeycomb.records("saf")
        assert len(records) == stats.samples_taken
        assert len({(r.user, r.time) for r in records}) == len(records)

    def test_retry_happens_on_next_tick_not_immediately(
        self, small_population, sensor_suite
    ):
        _, device, honeycomb, _ = run_with_losses(
            small_population, sensor_suite, lose={0}
        )
        # The first batch's records are older than one upload period by
        # the time they land: their delivery lagged a full retry cycle.
        times = sorted(r.time for r in honeycomb.records("saf"))
        assert times[0] <= TASK.upload_period  # early samples did arrive
        # Device-side accounting agrees: one failed then successes.
        assert device.stats["saf"].uploads_failed == 1

    def test_consecutive_losses_still_deliver_exactly_once(
        self, small_population, sensor_suite
    ):
        # Lose the first two upload attempts; the third carries it all.
        _, device, honeycomb, transport = run_with_losses(
            small_population, sensor_suite, lose={0, 1}
        )
        stats = device.stats["saf"]
        assert transport.stats.messages_lost == 2
        assert stats.uploads_failed == 2
        records = honeycomb.records("saf")
        assert len(records) == stats.samples_taken > 0
        assert len({(r.user, r.time) for r in records}) == len(records)

    def test_store_agrees_with_honeycomb_after_retries(
        self, small_population, sensor_suite
    ):
        sim, device, honeycomb, _ = run_with_losses(
            small_population, sensor_suite, lose={0}
        )
        hive = honeycomb._hive
        assert hive.store.n_records == honeycomb.n_records("saf")
        assert hive.store.aggregate("saf").records == device.stats["saf"].samples_taken


class TestGatewayBackpressureRetry:
    def test_rejected_upload_rebuffers_and_retries(
        self, small_population, sensor_suite
    ):
        """Server-side shedding mirrors transport loss: freshness, not data.

        The shard buffer is pre-filled so the device's first upload hits
        a full ``reject`` gateway; the batch re-buffers on-device and the
        next upload tick delivers everything exactly once.
        """
        from repro.apisense.incentives import UserState
        from repro.store import DatasetStore, IngestPipeline

        sim = Simulator()
        pipeline = IngestPipeline(
            sim,
            DatasetStore(n_shards=1),
            policy="reject",
            buffer_capacity=64,
            flush_delay=5.0,
        )
        hive = Hive(sim, pipeline=pipeline, seed=3)
        device = build_device(small_population, sensor_suite, index=0)
        hive.register_device(device)
        honeycomb = Honeycomb("lab", hive)
        honeycomb.deploy(TASK, recruitment=_Nobody())
        assert device.offer_task(TASK, acceptance_probability=1.0)

        # Fill the single shard just before the device's first upload
        # tick (t=1800); the filler flushes at t≈1804, after the upload
        # has bounced.
        hive.community["filler"] = UserState(user="filler", motivation=0.5)
        filler = make_filler_records(64)
        sim.schedule_at(1799.0, lambda: hive.receive_upload("dev-f", "filler", "saf", filler))

        sim.run_until(TASK.end + 2 * TASK.upload_period)
        stats = device.stats["saf"]
        assert stats.uploads_rejected == 1
        # Exactly once despite the bounce: every sample this device took
        # reached the Honeycomb, with no duplicates.
        mine = [r for r in honeycomb.records("saf") if r.user == device.user]
        assert len(mine) == stats.samples_taken > 0
        assert len({r.time for r in mine}) == len(mine)
        assert hive.store.n_records == honeycomb.n_records("saf")


def make_filler_records(n: int) -> list:
    from repro.apisense.device import SensorRecord

    return [
        SensorRecord(
            device_id="dev-f", user="filler", task="saf", time=float(i), values={}
        )
        for i in range(n)
    ]


class TestRetryOrdering:
    """Rejected batches re-buffer *in front of* newer samples."""

    def test_rebuffered_batch_rides_ahead_of_newer_samples(
        self, small_population, sensor_suite
    ):
        """After reject -> retry, the retried upload carries [old batch +
        samples taken since] in original time order, so the Honeycomb's
        arrival order per device stays time-sorted."""
        from repro.apisense.incentives import UserState
        from repro.store import DatasetStore, IngestPipeline

        sim = Simulator()
        pipeline = IngestPipeline(
            sim,
            DatasetStore(n_shards=1),
            policy="reject",
            buffer_capacity=64,
            flush_delay=5.0,
        )
        hive = Hive(sim, pipeline=pipeline, seed=3)
        device = build_device(small_population, sensor_suite, index=0)
        hive.register_device(device)
        honeycomb = Honeycomb("lab", hive)
        honeycomb.deploy(TASK, recruitment=_Nobody())
        assert device.offer_task(TASK, acceptance_probability=1.0)

        # Bounce the first upload (t=1800) off a full gateway.
        hive.community["filler"] = UserState(user="filler", motivation=0.5)
        filler = make_filler_records(64)
        sim.schedule_at(
            1799.0, lambda: hive.receive_upload("dev-f", "filler", "saf", filler)
        )
        sim.run_until(TASK.end + 2 * TASK.upload_period)

        stats = device.stats["saf"]
        assert stats.uploads_rejected == 1
        # Arrival order at the Honeycomb (per this device) is the order
        # records were appended: the re-buffered first batch must
        # precede the second period's samples despite arriving later.
        mine = [r for r in honeycomb.records("saf") if r.user == device.user]
        times = [r.time for r in mine]
        assert times == sorted(times)
        assert len(mine) == stats.samples_taken > 0
        # The device buffer itself drained fully.
        assert device._buffers["saf"] == []

    def test_partial_admission_does_not_double_count_records(
        self, small_population, sensor_suite
    ):
        """Under drop-oldest, a partially-admitted batch bumps
        ``stats.records`` only by the admitted count: platform counters
        agree with what the store actually holds."""
        from repro.apisense.incentives import UserState
        from repro.store import DatasetStore, IngestPipeline

        sim = Simulator()
        pipeline = IngestPipeline(
            sim,
            DatasetStore(n_shards=1),
            policy="drop-oldest",
            buffer_capacity=16,
            flush_delay=1000.0,  # no flush between the two uploads
        )
        hive = Hive(sim, pipeline=pipeline, seed=3)
        honeycomb = Honeycomb("lab", hive)
        honeycomb.deploy(TASK, recruitment=_Nobody())
        hive.community["filler"] = UserState(user="filler", motivation=0.5)

        first = make_filler_records(10)
        second = [
            r
            for r in make_filler_records(22)
            if r.time >= 10.0  # 12 newer records, distinct times
        ]
        accepted_first = hive.receive_upload("dev-f", "filler", "saf", first)
        accepted_second = hive.receive_upload("dev-f", "filler", "saf", second)
        assert accepted_first == 10
        # 12 into 6 free slots: drop-oldest evicts 6 buffered, admits 12.
        assert accepted_second == 12
        assert pipeline.stats.dropped == 6

        pipeline.flush_all()
        task_stats = hive.stats.per_task["saf"]
        # Counted = admitted (10 + 12), stored = admitted - dropped.
        assert task_stats.records == accepted_first + accepted_second
        assert hive.store.n_records == task_stats.records - pipeline.stats.dropped
        assert honeycomb.n_records("saf") == hive.store.n_records

    def test_oversized_batch_partial_admission_counts_kept_tail(
        self, small_population, sensor_suite
    ):
        """A batch larger than the whole buffer is admitted whole; all
        but its newest tail is immediately evicted and counted dropped,
        so admitted - dropped == stored (one counter per record)."""
        from repro.apisense.incentives import UserState
        from repro.store import DatasetStore, IngestPipeline

        sim = Simulator()
        pipeline = IngestPipeline(
            sim,
            DatasetStore(n_shards=1),
            policy="drop-oldest",
            buffer_capacity=16,
            flush_delay=1000.0,
        )
        hive = Hive(sim, pipeline=pipeline, seed=3)
        honeycomb = Honeycomb("lab", hive)
        honeycomb.deploy(TASK, recruitment=_Nobody())
        hive.community["filler"] = UserState(user="filler", motivation=0.5)

        batch = make_filler_records(40)
        accepted = hive.receive_upload("dev-f", "filler", "saf", batch)
        assert accepted == 40  # whole batch admitted...
        assert pipeline.stats.dropped == 24  # ...head evicted on the spot
        assert hive.stats.per_task["saf"].records == 40
        # Immediate eviction must not pin first_record_time: the shed
        # records' times were never retained by the platform.
        assert hive.stats.per_task["saf"].first_record_time is None
        pipeline.flush_all()
        assert hive.store.n_records == 16
        assert pipeline.unaccounted == 0
        stored_times = sorted(
            float(t) for t in hive.store.scan("saf").time
        )
        assert stored_times == [float(t) for t in range(24, 40)]
