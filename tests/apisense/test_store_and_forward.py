"""Store-and-forward under deterministic loss: retried, delivered once.

The lossy-campaign tests show the *statistical* consequence of the
device's store-and-forward buffer (volume survives loss); these tests
pin the *mechanism* with a scripted transport: records buffered through
a lost upload are retried at the next upload tick and arrive exactly
once — loss costs freshness, not data, and never duplicates.
"""

from __future__ import annotations

from repro.apisense.hive import Hive
from repro.apisense.honeycomb import Honeycomb
from repro.apisense.tasks import SensingTask
from repro.apisense.transport import Transport
from repro.simulation import Simulator
from repro.units import HOUR
from tests.apisense.conftest import build_device


class ScriptedLossTransport(Transport):
    """A transport that loses exactly the sends whose index is scripted.

    Indices count every message through the Hive's channel; the tests
    publish with an empty recruitment so no offer rides the transport
    and send #0 is the device's first upload.
    """

    def __init__(self, lose: set[int], latency: float = 0.05):
        super().__init__(latency_mean=latency, latency_jitter=0.0, loss=0.0, seed=0)
        self._lose = lose
        self._sends = 0

    def send(self, sim, deliver, payload_items: int = 1) -> bool:
        index = self._sends
        self._sends += 1
        self.stats.messages_sent += 1
        self.stats.payload_items += payload_items
        if index in self._lose:
            self.stats.messages_lost += 1
            return False
        sim.schedule(self.latency_mean, deliver)
        return True


TASK = SensingTask(
    name="saf",
    sensors=("gps",),
    sampling_period=300.0,
    upload_period=1800.0,
    end=2 * HOUR,
)


class _Nobody:
    """Recruitment policy offering the task to no device."""

    def select(self, devices, task, now, rng):
        return []


def run_with_losses(small_population, sensor_suite, lose: set[int]):
    """One device, one task, scripted upload losses; returns the pieces."""
    sim = Simulator()
    transport = ScriptedLossTransport(lose)
    hive = Hive(sim, transport=transport, seed=3)
    device = build_device(small_population, sensor_suite, index=0)
    hive.register_device(device)
    honeycomb = Honeycomb("lab", hive)
    # No transport-borne offer: the device accepts directly, so upload
    # send indices are deterministic (first upload is send #0).
    honeycomb.deploy(TASK, recruitment=_Nobody())
    assert device.offer_task(TASK, acceptance_probability=1.0)
    sim.run_until(TASK.end + 2 * TASK.upload_period)
    return sim, device, honeycomb, transport


class TestStoreAndForward:
    def test_lossless_baseline_delivers_everything(self, small_population, sensor_suite):
        _, device, honeycomb, _ = run_with_losses(small_population, sensor_suite, set())
        stats = device.stats["saf"]
        assert stats.samples_taken > 0
        assert stats.uploads_failed == 0
        assert honeycomb.n_records("saf") == stats.samples_taken

    def test_buffered_records_survive_a_lost_upload(self, small_population, sensor_suite):
        # Send #0 is the first upload tick -> lose it.
        _, device, honeycomb, transport = run_with_losses(
            small_population, sensor_suite, lose={0}
        )
        stats = device.stats["saf"]
        assert transport.stats.messages_lost == 1
        assert stats.uploads_failed == 1
        assert stats.uploads >= 1  # the retry went through
        # Exactly once: every sample taken reached the Honeycomb, and no
        # record was duplicated by the retry.
        records = honeycomb.records("saf")
        assert len(records) == stats.samples_taken
        assert len({(r.user, r.time) for r in records}) == len(records)

    def test_retry_happens_on_next_tick_not_immediately(
        self, small_population, sensor_suite
    ):
        _, device, honeycomb, _ = run_with_losses(
            small_population, sensor_suite, lose={0}
        )
        # The first batch's records are older than one upload period by
        # the time they land: their delivery lagged a full retry cycle.
        times = sorted(r.time for r in honeycomb.records("saf"))
        assert times[0] <= TASK.upload_period  # early samples did arrive
        # Device-side accounting agrees: one failed then successes.
        assert device.stats["saf"].uploads_failed == 1

    def test_consecutive_losses_still_deliver_exactly_once(
        self, small_population, sensor_suite
    ):
        # Lose the first two upload attempts; the third carries it all.
        _, device, honeycomb, transport = run_with_losses(
            small_population, sensor_suite, lose={0, 1}
        )
        stats = device.stats["saf"]
        assert transport.stats.messages_lost == 2
        assert stats.uploads_failed == 2
        records = honeycomb.records("saf")
        assert len(records) == stats.samples_taken > 0
        assert len({(r.user, r.time) for r in records}) == len(records)

    def test_store_agrees_with_honeycomb_after_retries(
        self, small_population, sensor_suite
    ):
        sim, device, honeycomb, _ = run_with_losses(
            small_population, sensor_suite, lose={0}
        )
        hive = honeycomb._hive
        assert hive.store.n_records == honeycomb.n_records("saf")
        assert hive.store.aggregate("saf").records == device.stats["saf"].samples_taken


class TestGatewayBackpressureRetry:
    def test_rejected_upload_rebuffers_and_retries(
        self, small_population, sensor_suite
    ):
        """Server-side shedding mirrors transport loss: freshness, not data.

        The shard buffer is pre-filled so the device's first upload hits
        a full ``reject`` gateway; the batch re-buffers on-device and the
        next upload tick delivers everything exactly once.
        """
        from repro.apisense.incentives import UserState
        from repro.store import DatasetStore, IngestPipeline

        sim = Simulator()
        pipeline = IngestPipeline(
            sim,
            DatasetStore(n_shards=1),
            policy="reject",
            buffer_capacity=64,
            flush_delay=5.0,
        )
        hive = Hive(sim, pipeline=pipeline, seed=3)
        device = build_device(small_population, sensor_suite, index=0)
        hive.register_device(device)
        honeycomb = Honeycomb("lab", hive)
        honeycomb.deploy(TASK, recruitment=_Nobody())
        assert device.offer_task(TASK, acceptance_probability=1.0)

        # Fill the single shard just before the device's first upload
        # tick (t=1800); the filler flushes at t≈1804, after the upload
        # has bounced.
        hive.community["filler"] = UserState(user="filler", motivation=0.5)
        filler = make_filler_records(64)
        sim.schedule_at(1799.0, lambda: hive.receive_upload("dev-f", "filler", "saf", filler))

        sim.run_until(TASK.end + 2 * TASK.upload_period)
        stats = device.stats["saf"]
        assert stats.uploads_rejected == 1
        # Exactly once despite the bounce: every sample this device took
        # reached the Honeycomb, with no duplicates.
        mine = [r for r in honeycomb.records("saf") if r.user == device.user]
        assert len(mine) == stats.samples_taken > 0
        assert len({r.time for r in mine}) == len(mine)
        assert hive.store.n_records == honeycomb.n_records("saf")


def make_filler_records(n: int) -> list:
    from repro.apisense.device import SensorRecord

    return [
        SensorRecord(
            device_id="dev-f", user="filler", task="saf", time=float(i), values={}
        )
        for i in range(n)
    ]
