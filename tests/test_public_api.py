"""Meta-tests over the public API surface.

Guards the documentation contract: every public module and every name a
package exports must exist, import cleanly, and carry a docstring.
"""

from __future__ import annotations

import importlib
import pkgutil

import pytest

import repro

PUBLIC_PACKAGES = [
    "repro",
    "repro.geo",
    "repro.mobility",
    "repro.privacy",
    "repro.privacy.mechanisms",
    "repro.privacy.attacks",
    "repro.utility",
    "repro.crypto",
    "repro.simulation",
    "repro.apisense",
    "repro.store",
    "repro.streams",
    "repro.federation",
    "repro.server",
    "repro.core",
]


def _walk_modules() -> list[str]:
    names = []
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        names.append(info.name)
    return names


ALL_MODULES = _walk_modules()


class TestImports:
    @pytest.mark.parametrize("module_name", ALL_MODULES)
    def test_every_module_imports(self, module_name):
        importlib.import_module(module_name)

    @pytest.mark.parametrize("module_name", ALL_MODULES)
    def test_every_module_has_docstring(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__, f"{module_name} lacks a module docstring"
        assert len(module.__doc__.strip()) > 20


class TestExports:
    @pytest.mark.parametrize("package_name", PUBLIC_PACKAGES)
    def test_all_names_resolve(self, package_name):
        package = importlib.import_module(package_name)
        exported = getattr(package, "__all__", [])
        assert exported, f"{package_name} exports nothing"
        for name in exported:
            assert hasattr(package, name), f"{package_name}.{name} missing"

    @pytest.mark.parametrize("package_name", PUBLIC_PACKAGES)
    def test_exported_classes_have_docstrings(self, package_name):
        package = importlib.import_module(package_name)
        for name in getattr(package, "__all__", []):
            obj = getattr(package, name)
            if isinstance(obj, type) or callable(obj):
                assert obj.__doc__, f"{package_name}.{name} lacks a docstring"


class TestVersion:
    def test_version_string(self):
        assert repro.__version__.count(".") == 2
