"""End-to-end tests of the command-line interface."""

import pytest

from repro.cli import main
from repro.mobility import MobilityDataset


@pytest.fixture(scope="module")
def raw_csv(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "raw.csv"
    code = main(
        [
            "generate",
            "--users", "6",
            "--days", "3",
            "--period", "180",
            "--seed", "5",
            "--out", str(path),
        ]
    )
    assert code == 0
    return path


class TestGenerate:
    def test_output_readable(self, raw_csv):
        dataset = MobilityDataset.from_csv(raw_csv)
        assert len(dataset) == 6
        assert dataset.n_records > 1000

    def test_deterministic(self, tmp_path, raw_csv):
        other = tmp_path / "again.csv"
        main(
            [
                "generate",
                "--users", "6",
                "--days", "3",
                "--period", "180",
                "--seed", "5",
                "--out", str(other),
            ]
        )
        assert other.read_text() == raw_csv.read_text()


class TestProtect:
    @pytest.mark.parametrize(
        "mechanism_args",
        [
            ["--mechanism", "speed-smoothing", "--epsilon-m", "150"],
            ["--mechanism", "geo-indistinguishability", "--epsilon", "0.01"],
            ["--mechanism", "spatial-cloaking", "--cell-m", "500"],
            ["--mechanism", "temporal-downsampling", "--window-s", "600"],
            ["--mechanism", "identity"],
        ],
    )
    def test_each_mechanism(self, raw_csv, tmp_path, mechanism_args):
        out = tmp_path / "prot.csv"
        code = main(
            ["protect", "--input", str(raw_csv), "--out", str(out), *mechanism_args]
        )
        assert code == 0
        protected = MobilityDataset.from_csv(out)
        assert len(protected) >= 1


class TestAttack:
    def test_poi_attack_runs(self, raw_csv, capsys):
        code = main(["attack", "--input", str(raw_csv)])
        assert code == 0
        output = capsys.readouterr().out
        assert "candidate POIs" in output

    def test_linkage_with_background(self, raw_csv, capsys):
        code = main(
            ["attack", "--input", str(raw_csv), "--background", str(raw_csv)]
        )
        assert code == 0
        assert "re-identification" in capsys.readouterr().out


class TestEvaluate:
    def test_metrics_printed(self, raw_csv, tmp_path, capsys):
        out = tmp_path / "prot.csv"
        main(
            [
                "protect",
                "--input", str(raw_csv),
                "--mechanism", "speed-smoothing",
                "--out", str(out),
            ]
        )
        capsys.readouterr()
        code = main(["evaluate", "--raw", str(raw_csv), "--protected", str(out)])
        assert code == 0
        output = capsys.readouterr().out
        assert "hotspot F1" in output
        assert "OD trip matrix" in output
        assert "spatial distortion" in output


class TestCampaign:
    def test_campaign_runs_and_exports(self, tmp_path, capsys):
        out = tmp_path / "collected.csv"
        code = main(
            [
                "campaign",
                "--users", "5",
                "--days", "1",
                "--period", "600",
                "--incentive", "reward",
                "--seed", "3",
                "--out", str(out),
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "campaign:" in output
        assert "acceptance" in output
        collected = MobilityDataset.from_csv(out)
        assert len(collected) >= 1

    def test_lossy_campaign(self, capsys):
        code = main(
            ["campaign", "--users", "4", "--days", "1", "--loss", "0.2", "--seed", "2"]
        )
        assert code == 0
        assert "transport loss" in capsys.readouterr().out


class TestStats:
    def test_summary_printed(self, raw_csv, capsys):
        code = main(["stats", "--input", str(raw_csv)])
        assert code == 0
        output = capsys.readouterr().out
        assert "users=6" in output
        assert "rgyr=" in output

    def test_geojson_export(self, raw_csv, tmp_path, capsys):
        out = tmp_path / "traces.geojson"
        code = main(["stats", "--input", str(raw_csv), "--geojson", str(out)])
        assert code == 0
        import json

        loaded = json.loads(out.read_text())
        assert len(loaded["features"]) == 6


class TestPublish:
    def test_successful_publication(self, raw_csv, tmp_path, capsys):
        out = tmp_path / "published.csv"
        code = main(
            [
                "publish",
                "--input", str(raw_csv),
                "--max-poi-recall", "0.3",
                "--out", str(out),
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "chosen:" in output
        published = MobilityDataset.from_csv(out)
        assert all(user.startswith("pseudo-") for user in published.users)

    def test_zero_bar_still_publishable_by_smoothing(self, raw_csv, tmp_path, capsys):
        """Even a zero-recall bar is satisfiable on a small population —
        coarse smoothing legitimately drives the attack to zero — so the
        CLI must publish rather than fail."""
        out = tmp_path / "published.csv"
        code = main(
            [
                "publish",
                "--input", str(raw_csv),
                "--max-poi-recall", "0.0",
                "--out", str(out),
            ]
        )
        output = capsys.readouterr().out
        assert code == 0
        assert "speed-smoothing" in output
        assert out.exists()

    def test_lenient_flag_always_publishes(self, raw_csv, tmp_path, capsys):
        out = tmp_path / "published-lenient.csv"
        code = main(
            [
                "publish",
                "--input", str(raw_csv),
                "--lenient",
                "--max-poi-recall", "0.0",
                "--out", str(out),
            ]
        )
        assert code == 0
        assert out.exists()


class TestFederationCommands:
    def test_stats_reports_balance_and_stability(self, capsys):
        code = main(["federation", "stats", "--devices", "500", "--hives", "4"])
        assert code == 0
        output = capsys.readouterr().out
        assert "ring: 4 hives" in output
        assert "re-homes" in output
        assert "all onto the new member: True" in output

    def test_run_federated_campaign(self, capsys):
        code = main(
            [
                "federation", "run",
                "--users", "8",
                "--days", "1",
                "--hives", "2",
                "--period", "900",
                "--seed", "4",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "federation health" in output
        assert "2 up, 0 down" in output
        assert "federated task federated-campaign" in output

    def test_run_with_failure_injection(self, capsys):
        code = main(
            [
                "federation", "run",
                "--users", "6",
                "--days", "1",
                "--hives", "3",
                "--period", "900",
                "--fail-hive", "hive-1",
                "--fail-at-hours", "6",
                "--fail-for-hours", "6",
                "--seed", "4",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "federation health" in output
        assert "3 up, 0 down" in output  # recovered by end of campaign

    def test_query_counts_match_input(self, raw_csv, capsys):
        dataset = MobilityDataset.from_csv(raw_csv)
        code = main(
            ["federation", "query", "--input", str(raw_csv), "--hives", "3"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert f"matched {dataset.n_records} records" in output
        assert "hive-0" in output

    def test_query_writes_csv(self, raw_csv, tmp_path, capsys):
        out = tmp_path / "federated.csv"
        code = main(
            [
                "federation", "query",
                "--input", str(raw_csv),
                "--hives", "2",
                "--t0", "0",
                "--t1", "43200",
                "--out", str(out),
            ]
        )
        assert code == 0
        assert out.exists()
        header = out.read_text().splitlines()[0]
        assert header == "user,time,lat,lon,value"


class TestStreamCommands:
    def test_views_prints_closed_windows(self, raw_csv, capsys):
        code = main(
            [
                "stream", "views",
                "--input", str(raw_csv),
                "--window", "21600",
                "--last", "3",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "records into" in output
        assert "ingested/window" in output
        assert "cells" in output

    def test_views_sliding_overlap(self, raw_csv, capsys):
        code = main(
            [
                "stream", "views",
                "--input", str(raw_csv),
                "--window", "21600",
                "--slide", "7200",
                "--last", "2",
            ]
        )
        assert code == 0
        assert "ingested/window" in capsys.readouterr().out

    def test_alerts_exit_code_signals_firing(self, raw_csv, capsys):
        # An absurd rate floor fires on every window -> exit 1.
        code = main(
            [
                "stream", "alerts",
                "--input", str(raw_csv),
                "--window", "21600",
                "--rate-below", "1000",
            ]
        )
        assert code == 1
        output = capsys.readouterr().out
        assert "[rate-below]" in output

        # No query fired -> exit 0.
        code = main(
            [
                "stream", "alerts",
                "--input", str(raw_csv),
                "--window", "21600",
                "--rate-below", "0.00001",
            ]
        )
        assert code == 0
        assert "0 alerts" in capsys.readouterr().out

    def test_watch_streams_windows_live(self, raw_csv, capsys):
        code = main(
            [
                "stream", "watch",
                "--input", str(raw_csv),
                "--window", "21600",
                "--limit", "4",
                "--coverage-stalled", "2",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert output.count("ingested/window") >= 4
        assert "watched" in output


class TestServeCommand:
    def test_serve_pushes_to_all_clients(self, capsys):
        code = main(
            [
                "serve",
                "--users", "6",
                "--days", "1",
                "--clients", "2",
                "--window", "21600",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        # The health report grew a serving-tier line...
        assert "server: " in output
        assert "middleware denials" in output
        # ...and both dashboard sessions drained their pushes.
        assert "served 2 dashboard clients" in output
        assert "0 dropped (slow consumers)" in output


class TestTaskCommands:
    @pytest.fixture()
    def good_spec(self, tmp_path):
        spec = tmp_path / "good_task.py"
        spec.write_text(
            "from repro.apisense import SensingTask\n"
            "\n"
            "def _setup(ctx):\n"
            "    ctx.every(60.0, lambda c: c.save({'battery': c.battery.level}))\n"
            "    ctx.on_battery_below(0.5, lambda c: None)\n"
            "\n"
            "TASK = (SensingTask.builder('spec-task')\n"
            "        .sensors('gps', 'battery')\n"
            "        .every(60)\n"
            "        .script(_setup)\n"
            "        .build())\n"
        )
        return spec

    def test_vet_acceptable_spec(self, good_spec, capsys):
        code = main(["task", "vet", "--spec", str(good_spec)])
        assert code == 0
        output = capsys.readouterr().out
        assert "dry run of task 'spec-task'" in output
        assert "ACCEPTABLE" in output
        assert "timer#0" in output

    def test_vet_rejects_crashing_spec(self, tmp_path, capsys):
        spec = tmp_path / "bad_task.py"
        spec.write_text(
            "from repro.apisense import SensingTask\n"
            "\n"
            "def _setup(ctx):\n"
            "    def bad(c):\n"
            "        raise RuntimeError('kaput')\n"
            "    ctx.every(60.0, bad)\n"
            "\n"
            "def build_task():\n"
            "    return (SensingTask.builder('bad-task')\n"
            "            .sensors('gps').every(60).script(_setup).build())\n"
        )
        code = main(["task", "vet", "--spec", str(spec)])
        assert code == 1
        output = capsys.readouterr().out
        assert "REJECTED" in output
        assert "kaput" in output

    def test_describe_lists_handlers(self, good_spec, capsys):
        code = main(["task", "describe", "--spec", str(good_spec)])
        assert code == 0
        output = capsys.readouterr().out
        assert "spec-task" in output
        assert "v2 event script" in output
        assert "battery_below" in output

    def test_vet_example_spec(self, capsys):
        from pathlib import Path

        example = Path(__file__).parent.parent / "examples" / "adaptive_scripting.py"
        code = main(["task", "vet", "--spec", str(example)])
        assert code == 0
        assert "ACCEPTABLE" in capsys.readouterr().out

    def test_missing_spec_errors(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["task", "vet", "--spec", str(tmp_path / "nope.py")])

    def test_explicit_attribute(self, good_spec, capsys):
        code = main(["task", "describe", "--spec", f"{good_spec}:TASK"])
        assert code == 0
        assert "spec-task" in capsys.readouterr().out

    def test_legacy_hook_spec_vets(self, tmp_path, capsys):
        spec = tmp_path / "legacy_task.py"
        spec.write_text(
            "from repro.apisense import SensingTask\n"
            "TASK = SensingTask(name='legacy', sensors=('gps',),\n"
            "                   script=lambda values: values)\n"
        )
        code = main(["task", "vet", "--spec", str(spec)])
        assert code == 0
        assert "ACCEPTABLE" in capsys.readouterr().out


class TestPrivacyCommands:
    def test_demo_secure_equals_plaintext(self, capsys):
        code = main(
            [
                "privacy", "demo",
                "--devices", "10",
                "--dropouts", "2",
                "--key-bits", "128",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "secure sum over 8 survivors" in output
        assert "killed mid-session" in output

    def test_demo_forced_masking(self, capsys):
        code = main(
            [
                "privacy", "demo",
                "--devices", "8",
                "--dropouts", "1",
                "--protocol", "masking",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "0 paillier / 8 masking" in output
        assert "Shamir" in output

    def test_federation_query_secure_cross_check(self, raw_csv, capsys):
        code = main(
            [
                "federation", "query",
                "--input", str(raw_csv),
                "--hives", "3",
                "--secure",
                "--key-bits", "128",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "secure aggregate of ingested" in output
        assert "-> match" in output


class TestObsTimeseriesCommands:
    def test_history_lists_scraped_series(self, raw_csv, capsys):
        code = main(
            [
                "obs", "history",
                "--input", str(raw_csv),
                "--window", "21600",
                "--cadence", "3600",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "scraped" in output
        assert "repro_pipeline_records_accepted_total" in output

    def test_history_queries_one_family(self, raw_csv, capsys):
        code = main(
            [
                "obs", "history",
                "--input", str(raw_csv),
                "--window", "21600",
                "--cadence", "3600",
                "--name", "repro_pipeline_records_accepted_total",
                "--query-window", "43200",
                "--last", "3",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "delta" in output
        assert "rate" in output
        assert "the last 43200s" in output

    def test_slo_evaluates_the_stock_set(self, raw_csv, capsys):
        code = main(
            [
                "obs", "slo",
                "--input", str(raw_csv),
                "--window", "21600",
                "--cadence", "3600",
            ]
        )
        output = capsys.readouterr().out
        assert "evaluated 3 SLOs" in output
        assert "ingest-availability" in output
        assert "flush-latency" in output
        assert "view-freshness" in output
        # A healthy replay must end with every SLO ok (exit 0).
        assert code == 0

    def test_watch_pushes_frames_over_the_server(self, raw_csv, capsys):
        code = main(
            [
                "obs", "watch",
                "--input", str(raw_csv),
                "--window", "21600",
                "--cadence", "21600",
                "--limit", "2",
                "--names", "repro_pipeline",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "frame @ t=" in output
        assert "watched" in output
        assert "over the server channel" in output

    def test_dump_and_top_emit_json(self, raw_csv, capsys):
        import json

        code = main(
            [
                "obs", "dump",
                "--input", str(raw_csv),
                "--window", "21600",
                "--json",
            ]
        )
        assert code == 0
        rows = json.loads(capsys.readouterr().out)
        assert any(
            row["name"] == "repro_pipeline_records_accepted_total"
            for row in rows
        )
        code = main(
            [
                "obs", "top",
                "--input", str(raw_csv),
                "--window", "21600",
                "--json",
            ]
        )
        assert code == 0
        stages = json.loads(capsys.readouterr().out)
        assert stages and {"stage", "count", "p50", "p99"} <= set(stages[0])

    def test_bench_diff_renders_the_table(self, capsys):
        code = main(["obs", "bench-diff", "--base", "HEAD"])
        assert code in (0, 1)  # suite order may have refreshed BENCH files
        output = capsys.readouterr().out
        assert "bench diff vs HEAD" in output
