"""FederationHealthReport: the roll-up dashboard."""

from __future__ import annotations

import pytest

from repro.federation import federation_snapshot
from repro.units import DAY, HOUR


class TestFederationSnapshot:
    def test_member_roll_up(self, deployed, sim):
        router, devices, owner, task = deployed
        sim.run_until(12 * HOUR)
        report = federation_snapshot(router, sim.now)
        assert report.n_members == 3
        assert report.up_members == ("hive-0", "hive-1", "hive-2")
        assert report.down_members == ()
        assert report.total_devices == len(devices)
        assert len(report.members) == 3
        assert report.total_records == sum(
            m.report.store_records for m in report.members
        )
        assert report.member("hive-0").up

    def test_down_member_flagged(self, deployed, sim):
        router, devices, owner, task = deployed
        sim.run_until(2 * HOUR)
        router.fail("hive-1")
        report = federation_snapshot(router, sim.now)
        assert report.down_members == ("hive-1",)
        assert not report.member("hive-1").up
        assert report.member("hive-1").devices == 0
        assert report.migrations == len(router.migration_log) > 0
        text = report.to_text()
        assert "1 down" in text
        assert "DOWN" in text

    def test_imbalance_over_live_members(self, deployed, sim):
        router, devices, owner, task = deployed
        report = federation_snapshot(router, sim.now)
        live = [m.devices for m in report.members if m.up]
        mean = sum(live) / len(live)
        assert report.placement_imbalance == pytest.approx(max(live) / mean)

    def test_unknown_member_raises(self, deployed, sim):
        router, devices, owner, task = deployed
        with pytest.raises(KeyError):
            federation_snapshot(router, sim.now).member("nope")

    def test_shed_counters_surface(self, deployed, sim):
        router, devices, owner, task = deployed
        sim.run_until(DAY + HOUR)
        for name in router.member_names:
            router.hive(name).pipeline.flush_all()
        report = federation_snapshot(router, sim.now)
        # Spill policy with ample buffers: nothing shed, and the report
        # says so explicitly (operators see drops when they happen).
        assert report.total_shed == 0
        assert "shed by backpressure" in report.to_text()

    def test_members_without_views_render_detached_streams(self, deployed, sim):
        """A hive with no registered views is detached, not zero-valued."""
        router, devices, owner, task = deployed
        # Attach a view on exactly one member (before streaming begins).
        from repro.streams import WindowSpec

        router.hive("hive-1").streams.register_view(
            "m5", WindowSpec.tumbling(300.0)
        )
        sim.run_until(2 * HOUR)
        report = federation_snapshot(router, sim.now)
        text = report.to_text()
        # The other fixture hives never registered a windowed view, so
        # their member lines say so instead of claiming "0 views".
        assert text.count("streams tier not attached") == report.n_members - 1
        assert "0 views" not in text
        assert "1 views" in text
