"""The privacy tier over the federated planes: secure == plaintext.

Fixed-seed multi-hive workloads, batch and live: the aggregates the
crypto protocols compute (counts/sums/means/histograms over the member
stores, per-window additive totals over the member stream engines) must
match what the plaintext merge paths report — exactly on counts, within
fixed-point tolerance on value sums — including with devices dropping
mid-session.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.errors import StoreError, StreamError
from repro.federation import FederatedDataset, FederatedStreamMerger
from repro.federation.ring import ConsistentHashRing
from repro.privacy.secure_aggregation import (
    ParticipantProfile,
    SecureAggregationPolicy,
)
from repro.simulation import FaultInjector, Simulator
from repro.streams import StreamEngine, WindowSpec
from tests.federation.test_query import TASK, make_records, shard_records
from tests.federation.test_stream_merge import run_member, shard_by_ring, workload

POLICY = SecureAggregationPolicy(key_bits=128, paillier_battery_floor=0.5)
BIN_EDGES = [0.0, 1000.0, 2000.0, 4000.0]


@pytest.fixture(scope="module", params=[1, 3])
def federated(request) -> FederatedDataset:
    return FederatedDataset(shard_records(request.param))


def plaintext_truth(federated, exclude_users=frozenset()):
    batch = federated.scan(TASK)
    keep = np.array(
        [name not in exclude_users for name in batch.user_names()], dtype=bool
    )
    values = batch.value[keep]
    finite = values[np.isfinite(values)]
    return {
        "records": int(keep.sum()),
        "value_count": len(finite),
        "value_sum": float(finite.sum()),
        "histogram": np.histogram(finite, bins=BIN_EDGES)[0].tolist(),
    }


class TestSecureAggregate:
    def test_matches_plaintext_aggregates(self, federated):
        result = federated.secure_aggregate(
            TASK, bin_edges=BIN_EDGES, policy=POLICY, rng=random.Random(11)
        )
        truth = plaintext_truth(federated)
        assert result.records == truth["records"]
        assert result.value_count == truth["value_count"]
        tolerance = 0.5 * result.contributors / 1000.0
        assert result.value_sum == pytest.approx(truth["value_sum"], abs=tolerance)
        assert result.mean_value == pytest.approx(
            truth["value_sum"] / truth["value_count"], abs=0.01
        )
        assert list(result.histogram.values()) == truth["histogram"]
        assert result.dropped == ()
        # Also cross-check against the streaming aggregate view.
        assert result.records == federated.aggregate(TASK).records

    def test_protocol_selection_follows_profiles(self, federated):
        users = sorted(set(federated.scan(TASK).user_names()))
        weak = set(users[::3])
        profiles = {
            user: ParticipantProfile(
                user, battery=0.1 if user in weak else 0.9
            )
            for user in users
        }
        result = federated.secure_aggregate(
            TASK, policy=POLICY, profiles=profiles, rng=random.Random(12)
        )
        split = result.protocol_split
        assert split["masking"] >= len(weak) or len(weak) < 2
        assert split["paillier"] + split["masking"] == result.contributors
        assert result.records == plaintext_truth(federated)["records"]

    def test_dropouts_still_reconstruct_the_sum(self, federated):
        # k devices die mid-session (FaultInjector outages between the
        # session's dealing and the collection round); the surviving
        # cohort's sums still come out — and equal the survivors' truth.
        sim = Simulator()
        faults = FaultInjector(sim)
        users = sorted(set(federated.scan(TASK).user_names()))
        killed = set(users[2:5])
        for user in killed:
            faults.schedule_outage(f"device:{user}", at=100.0)
        sim.run()
        result = federated.secure_aggregate(
            TASK, policy=POLICY, rng=random.Random(13), faults=faults
        )
        truth = plaintext_truth(federated, exclude_users=killed)
        assert len(result.dropped) == len(killed)
        assert result.records == truth["records"]
        assert result.value_sum == pytest.approx(
            truth["value_sum"], abs=0.5 * result.contributors / 1000.0
        )

    def test_explicit_down_set_by_user_id(self, federated):
        users = sorted(set(federated.scan(TASK).user_names()))
        down = {users[0]}
        result = federated.secure_aggregate(
            TASK, policy=POLICY, rng=random.Random(14), down=down
        )
        truth = plaintext_truth(federated, exclude_users=down)
        assert result.records == truth["records"]

    def test_unknown_task_rejected(self, federated):
        with pytest.raises(StoreError):
            federated.secure_aggregate("no-such-task", policy=POLICY)


class TestSecureStreamMerge:
    @pytest.fixture(scope="class")
    def merger(self) -> FederatedStreamMerger:
        shards = shard_by_ring(workload(), 4)
        return FederatedStreamMerger(
            {name: run_member(records) for name, records in shards.items()}
        )

    def test_secure_totals_match_merged_window(self, merger):
        task = merger.tasks[0]
        for snapshot in merger.history(task, "w"):
            totals = merger.secure_totals(task, "w", end=snapshot.end)
            assert totals.protocol == "masking"
            assert totals.records == snapshot.records
            assert totals.value_count == snapshot.value_count
            assert totals.value_sum == pytest.approx(
                snapshot.value_sum, abs=0.5 * len(totals.members) / 1000.0
            )
            assert totals.mean_value == pytest.approx(
                snapshot.mean_value, abs=0.01
            )

    def test_latest_window_default(self, merger):
        task = merger.tasks[0]
        totals = merger.secure_totals(task, "w")
        assert totals.end == merger.common_boundary(task, "w")

    def test_single_member_reports_plaintext_passthrough(self):
        engine = run_member(workload(n_users=2, n_records=400))
        merger = FederatedStreamMerger({"only": engine})
        task = merger.tasks[0]
        totals = merger.secure_totals(task, "w")
        assert totals.protocol == "plaintext"
        assert totals.records == merger.merged(task, "w", end=totals.end).records

    def test_secure_dashboard_renders(self, merger):
        text = merger.secure_dashboard("w")
        assert "secure" in text
        assert "masking" in text

    def test_fractional_window_ends_get_distinct_mask_streams(self):
        # Regression: the per-window mask stream is derived from the
        # exact float boundary — windows ending at 90.0 and 90.5 must
        # not reuse masks (reuse would leak per-hive deltas), and both
        # folds must still match the plaintext merge.
        def member(records):
            sim = Simulator()
            engine = StreamEngine(sim=sim, pane_seconds=0.5, allowed_lateness=0.0)
            engine.register_view("w", WindowSpec.tumbling(0.5))
            from repro.store import DatasetStore, IngestPipeline

            pipeline = IngestPipeline(sim, DatasetStore(n_shards=1), flush_delay=0.01)
            engine.attach(pipeline)
            pipeline.submit(records)
            sim.run()
            pipeline.flush_all()
            engine.finalize()
            return engine

        from tests.store.conftest import make_record

        engines = {
            name: member(
                [
                    make_record(user=f"{name}-u", time=89.7, value=float(i + 1)),
                    make_record(user=f"{name}-u", time=90.2, value=float(i + 2)),
                ]
            )
            for i, name in enumerate(("a", "b", "c"))
        }
        merger = FederatedStreamMerger(engines)
        for end in (90.0, 90.5):
            totals = merger.secure_totals("t", "w", end=end)
            snapshot = merger.merged("t", "w", end=end)
            assert totals.records == snapshot.records == 3
            assert totals.value_sum == pytest.approx(snapshot.value_sum, abs=0.01)

    def test_no_closed_window_raises(self):
        engine = StreamEngine(pane_seconds=60.0)
        engine.register_view("w", WindowSpec.tumbling(60.0))
        merger = FederatedStreamMerger({"a": engine, "b": engine})
        with pytest.raises(StreamError):
            merger.secure_totals("t", "w")
