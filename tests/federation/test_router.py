"""FederationRouter: membership, migration, failure, syndication."""

from __future__ import annotations

import pytest

from repro.apisense.device import SensorRecord
from repro.apisense.hive import Hive
from repro.apisense.honeycomb import Honeycomb
from repro.apisense.transport import Transport
from repro.errors import PlatformError
from repro.federation import FederatedDataset, FederationRouter
from repro.geo.point import GeoPoint
from repro.units import DAY, HOUR
from tests.federation.conftest import build_router, gps_task, populate


class TestMembership:
    def test_duplicate_join_rejected(self, sim):
        router = build_router(sim, 2)
        with pytest.raises(PlatformError):
            router.join("hive-0", Hive(sim, seed=9))

    def test_unknown_member_rejected(self, sim):
        router = build_router(sim, 2)
        with pytest.raises(PlatformError):
            router.hive("nope")
        with pytest.raises(PlatformError):
            router.fail("nope")

    def test_cannot_fail_last_member(self, sim):
        router = build_router(sim, 1)
        with pytest.raises(PlatformError):
            router.fail("hive-0")

    def test_cannot_remove_last_live_member(self, sim):
        router = build_router(sim, 2)
        router.fail("hive-1")
        with pytest.raises(PlatformError):
            router.leave("hive-0")
        router.leave("hive-1")  # removing the *down* member is fine
        assert router.member_names == ["hive-0"]

    def test_membership_log_and_views(self, sim):
        router = build_router(sim, 2)
        router.join("hive-2", Hive(sim, seed=2))
        kinds = [event.kind for event in router.membership_log]
        assert kinds == ["join", "join", "join"]
        # Ideal control plane: every member's gossiped view is current.
        for name in router.member_names:
            assert router.peer_view(name) == {"hive-0", "hive-1", "hive-2"}


class TestPlacement:
    def test_register_places_on_ring_owner(self, federation):
        router, devices = federation
        for device in devices:
            home = router.home_of(device.device_id)
            assert home == router.place(device.device_id)
            assert router.hive(home).device(device.device_id) is device

    def test_double_register_rejected(self, federation, fed_population, sensor_suite):
        router, devices = federation
        with pytest.raises(PlatformError):
            router.register_device(devices[0])

    def test_spread_covers_all_devices(self, federation):
        router, devices = federation
        spread = router.placement_spread()
        assert sum(spread.values()) == len(devices)
        assert router.total_devices() == len(devices)


class TestMigration:
    def test_join_migrates_only_ring_moved_devices(self, federation, sim):
        router, devices = federation
        before = {d.device_id: router.home_of(d.device_id) for d in devices}
        migrations = router.join("hive-3", Hive(sim, seed=3))
        for event in migrations:
            assert event.to_hive == "hive-3"
            assert event.reason == "join"
            assert before[event.device_id] != "hive-3"
        # Placement invariant holds after the change.
        for device in devices:
            assert router.home_of(device.device_id) == router.place(device.device_id)

    def test_migration_moves_user_state_and_binding(self, deployed, sim):
        router, devices, owner, task = deployed
        sim.run_until(2 * HOUR)
        migrations = router.join("hive-3", Hive(sim, seed=3))
        for event in migrations:
            target = router.hive("hive-3")
            assert event.user in target.community
            device = target.device(event.device_id)
            # Running tasks ride along: the dispatcher is still live.
            assert device.running_tasks in ([], [task.name])

    def test_failover_rehomes_and_rejoin_pulls_back(self, federation, sim):
        router, devices = federation
        victim = "hive-1"
        owned = [d for d in devices if router.home_of(d.device_id) == victim]
        assert owned, "seed places nobody on the victim; pick another seed"
        migrations = router.fail(victim)
        assert {e.device_id for e in migrations} == {d.device_id for d in owned}
        assert all(e.reason == "failover" for e in migrations)
        assert not router.hive(victim).devices
        assert router.down_members == [victim]

        back = router.rejoin(victim)
        assert {e.device_id for e in back} == {d.device_id for d in owned}
        assert all(e.to_hive == victim for e in back)
        assert router.down_members == []

    def test_scheduled_failure_fires_on_simulator(self, deployed, sim):
        router, devices, owner, task = deployed
        router.schedule_failure("hive-1", at=2 * HOUR, duration=2 * HOUR)
        sim.run_until(HOUR)
        assert router.is_up("hive-1")
        sim.run_until(3 * HOUR)
        assert not router.is_up("hive-1")
        sim.run_until(5 * HOUR)
        assert router.is_up("hive-1")
        kinds = [e.kind for e in router.membership_log if e.hive == "hive-1"]
        assert kinds == ["join", "fail", "rejoin"]
        assert [e.component for e in router.faults.log] == ["hive:hive-1"] * 2


class TestSyndication:
    def test_offers_cover_the_whole_crowd_once(self, deployed):
        router, devices, owner, task = deployed
        stats = router.task_stats(task.name)
        assert sum(s.offers for s in stats.values()) == len(devices)

    def test_campaign_data_routes_to_single_owner(self, deployed, sim):
        router, devices, owner, task = deployed
        sim.run_until(DAY + HOUR)
        for name in router.member_names:
            router.hive(name).pipeline.flush_all()
        stats = router.task_stats(task.name)
        total = sum(s.records for s in stats.values())
        assert total > 0
        assert owner.n_records(task.name) == total
        # No loss, no duplication: the federated store view agrees.
        federated = FederatedDataset.from_router(router)
        assert len(federated.scan(task.name)) == total

    def test_home_must_be_member_and_not_partner(self, federation):
        router, _ = federation
        owner = Honeycomb("lab", router.hive("hive-0"))
        with pytest.raises(PlatformError):
            router.syndicate(gps_task(), owner, home="nope")
        with pytest.raises(PlatformError):
            router.syndicate(gps_task(), owner, home="hive-0", partners=["hive-0"])

    def test_duplicate_syndication_rejected(self, deployed):
        router, devices, owner, task = deployed
        other = Honeycomb("lab2", router.hive("hive-1"))
        with pytest.raises(PlatformError):
            router.syndicate(gps_task(), other, home="hive-1")

    def test_non_partner_members_adopt_without_offering(self, federation):
        router, devices = federation
        owner = Honeycomb("lab", router.hive("hive-0"))
        router.syndicate(gps_task(), owner, home="hive-0", partners=["hive-1"])
        stats = router.task_stats("fed-task")
        # hive-2 adopted the task (an entry exists) but sent no offers.
        assert "hive-2" in stats
        assert stats["hive-2"].offers == 0

    def test_lossy_control_plane_retries_until_delivered(
        self, sim, fed_population, sensor_suite
    ):
        transport = Transport(latency_mean=0.05, latency_jitter=0.01, loss=0.5, seed=7)
        router = FederationRouter(
            sim, control_transport=transport, control_retry_delay=1.0
        )
        for index in range(3):
            router.join(f"hive-{index}", Hive(sim, seed=index))
        populate(router, fed_population, sensor_suite)
        owner = Honeycomb("lab", router.hive("hive-0"))
        receipt = router.syndicate(gps_task(), owner, home="hive-0")
        assert receipt.announcements == 2
        # Announcements are in flight; partners have not offered yet
        # unless the first attempt got through instantly.
        sim.run_until(60.0)
        stats = router.task_stats("fed-task")
        assert sum(s.offers for s in stats.values()) == router.total_devices()
        assert router.stats.messages_lost > 0
        assert router.stats.retries >= router.stats.messages_lost

    def test_rejoin_offers_reach_migrated_devices(self, federation, sim):
        """The rejoin handshake must offer *after* the rebalance pulls
        devices back, or the re-offer targets an empty community."""
        router, devices = federation
        victim = "hive-1"
        owned = [d for d in devices if router.home_of(d.device_id) == victim]
        assert owned
        router.fail(victim)
        owner = Honeycomb("lab", router.hive("hive-0"))
        router.syndicate(gps_task(), owner, home="hive-0")
        # Down during syndication: the announcement never reached it.
        assert victim not in router.task_stats("fed-task")
        router.rejoin(victim)
        assert router.task_stats("fed-task")[victim].offers == len(owned)

    def test_migrated_user_state_is_a_copy(self, federation, sim):
        """Two hives must never alias one mutable UserState — a user's
        other device may stay behind on the old member."""
        router, devices = federation
        victim = "hive-1"
        owned = [d for d in devices if router.home_of(d.device_id) == victim]
        assert owned
        router.fail(victim)
        user = owned[0].user
        old_state = router.hive(victim).community[user]
        new_home = router.home_of(owned[0].device_id)
        new_state = router.hive(new_home).community[user]
        assert new_state is not old_state
        assert new_state.motivation == old_state.motivation

    def test_rejoin_catalog_sync_covers_outage_syndications(self, federation, sim):
        router, devices = federation
        router.fail("hive-2")
        owner = Honeycomb("lab", router.hive("hive-0"))
        task = gps_task()
        router.syndicate(task, owner, home="hive-0")
        assert "hive-2" not in router.task_stats(task.name)
        router.rejoin("hive-2")
        # The rejoin handshake adopted (and offered) the missed task.
        assert "hive-2" in router.task_stats(task.name)


class TestDataPlane:
    def test_route_upload_lands_on_ring_owner(self, deployed, sim):
        router, devices, owner, task = deployed
        records = [
            SensorRecord(
                device_id="gateway-dev-1",
                user="gateway-user",
                task=task.name,
                time=sim.now,
                values={"gps": GeoPoint(44.8, -0.6)},
            )
        ]
        home, accepted = router.route_upload(
            "gateway-dev-1", "gateway-user", task.name, records
        )
        assert accepted == 1
        assert home == router.place("gateway-dev-1")
        router.hive(home).pipeline.flush_all()
        assert router.hive(home).store.n_records >= 1

    def test_placement_recruitment_filters_foreign_devices(self, federation, sim):
        router, devices = federation
        policy = router.placement_recruitment("hive-0")
        selected = policy.select(devices, gps_task(), sim.now, None)
        assert selected == [
            d for d in devices if router.place(d.device_id) == "hive-0"
        ]
