"""Consistent-hash ring: placement properties.

The federation's scale-out story rests on two ring properties, asserted
here as property tests: placement is **deterministic** (same members ->
same placement, across independently built rings), and membership
change is **stable** (one join/leave re-homes only ~1/N of keys, all of
them to/from the changed node).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PlatformError
from repro.federation import ConsistentHashRing

KEYS = [f"device-{i:05d}" for i in range(2000)]


def build_ring(n: int, replicas: int = 128) -> ConsistentHashRing:
    ring = ConsistentHashRing(replicas=replicas)
    for index in range(n):
        ring.add(f"hive-{index}")
    return ring


class TestValidation:
    def test_empty_ring_cannot_place(self):
        with pytest.raises(PlatformError):
            ConsistentHashRing().place("key")

    def test_duplicate_node_rejected(self):
        ring = build_ring(2)
        with pytest.raises(PlatformError):
            ring.add("hive-0")

    def test_remove_unknown_rejected(self):
        with pytest.raises(PlatformError):
            build_ring(2).remove("nope")

    def test_bad_replicas_rejected(self):
        with pytest.raises(PlatformError):
            ConsistentHashRing(replicas=0)


class TestDeterminism:
    @given(n_hives=st.integers(min_value=1, max_value=9), seed=st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_independent_rings_place_identically(self, n_hives, seed):
        """Placement is a pure function of the member set — two rings
        built separately (even in different add order) agree on every
        key, which is what lets members place without coordination."""
        keys = [f"dev-{seed}-{i}" for i in range(200)]
        forward = build_ring(n_hives)
        backward = ConsistentHashRing(replicas=128)
        for index in reversed(range(n_hives)):
            backward.add(f"hive-{index}")
        assert forward.placement(keys) == backward.placement(keys)

    def test_placement_stable_across_runs(self):
        """Pin a few concrete placements: any change to the hash layout
        is a breaking change for persisted deployments."""
        ring = build_ring(4)
        placement = ring.placement(KEYS[:500])
        again = build_ring(4).placement(KEYS[:500])
        assert placement == again


class TestMembershipStability:
    @given(n_hives=st.integers(min_value=1, max_value=8))
    @settings(max_examples=8, deadline=None)
    def test_join_rehomes_about_one_nth(self, n_hives):
        """Adding one hive moves ~1/(N+1) of keys, every one of them
        onto the new member (nobody else trades keys)."""
        before = build_ring(n_hives)
        after = build_ring(n_hives + 1)
        diff = before.diff(KEYS, after)
        ideal = len(KEYS) / (n_hives + 1)
        assert diff.n_moved <= 2.0 * ideal
        assert diff.n_moved >= 0.3 * ideal
        new_node = f"hive-{n_hives}"
        assert all(new == new_node for _old, new in diff.moved.values())

    @given(n_hives=st.integers(min_value=2, max_value=8))
    @settings(max_examples=8, deadline=None)
    def test_leave_rehomes_only_the_leavers_keys(self, n_hives):
        """Removing one hive moves exactly the keys it owned; keys on
        the survivors do not shuffle among themselves."""
        before = build_ring(n_hives)
        removed = f"hive-{n_hives - 1}"
        owned = [key for key in KEYS if before.place(key) == removed]
        after = build_ring(n_hives - 1)
        diff = before.diff(KEYS, after)
        assert sorted(diff.moved) == sorted(owned)
        assert all(old == removed for old, _new in diff.moved.values())

    def test_add_then_remove_is_identity(self):
        ring = build_ring(4)
        before = ring.placement(KEYS)
        ring.add("hive-9")
        ring.remove("hive-9")
        assert ring.placement(KEYS) == before


class TestBalance:
    @pytest.mark.parametrize("n_hives", [2, 4, 8])
    def test_spread_within_2x_of_mean(self, n_hives):
        spread = build_ring(n_hives).spread(KEYS)
        mean = len(KEYS) / n_hives
        assert len(spread) == n_hives
        assert sum(spread.values()) == len(KEYS)
        assert max(spread.values()) <= 2.0 * mean
        assert min(spread.values()) >= 0.25 * mean
