"""Federation-wide live views: merging member window snapshots.

The live-plane invariant mirrors the query plane's: placement homes
every device on exactly one member, so folding same-window member
snapshots (count-sum, cell-union, P²-merge) reconstructs the view a
single monolithic engine would have materialized — counts, users and
cells exactly, percentiles within sketch-merge tolerance.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import StreamError
from repro.federation import FederatedStreamMerger
from repro.federation.ring import ConsistentHashRing
from repro.simulation import Simulator
from repro.store.quantiles import P2Quantile
from repro.streams import ContinuousQuery, StreamEngine, WindowSpec, rate_below
from tests.store.conftest import make_record
from tests.streams.conftest import build_stream, replay


def workload(n_users: int = 12, n_records: int = 1200) -> list:
    """A deterministic multi-user GPS+value stream, time-sorted."""
    records = []
    for i in range(n_records):
        user = f"user-{i % n_users:03d}"
        records.append(
            make_record(
                user=user,
                time=float(i),
                lat=44.8 + 0.0004 * ((i * 7) % 120),
                lon=-0.6 + 0.0004 * ((i * 13) % 120),
                value=float((i * 31) % 100),
            )
        )
    return records


def shard_by_ring(records, n_members: int) -> dict[str, list]:
    ring = ConsistentHashRing()
    names = [f"hive-{i}" for i in range(n_members)]
    for name in names:
        ring.add(name)
    shards: dict[str, list] = {name: [] for name in names}
    for record in records:
        shards[ring.place(record.device_id)].append(record)
    return shards


def run_member(records) -> StreamEngine:
    # Lateness must cover the replay's batching span: a sparse member's
    # 40-record submit can span several panes of event time, and flushes
    # of its two store shards arrive back to back.
    sim = Simulator()
    _, pipeline, engine = build_stream(sim, allowed_lateness=600.0)
    engine.register_view("w", WindowSpec.tumbling(300.0))
    if records:
        replay(sim, pipeline, records, batch=40)
    engine.finalize()
    return engine


class TestValidation:
    def test_needs_members(self):
        with pytest.raises(StreamError):
            FederatedStreamMerger({})

    def test_unknown_member(self):
        merger = FederatedStreamMerger({"a": StreamEngine()})
        with pytest.raises(StreamError):
            merger.engine("b")

    def test_merge_without_windows_rejected(self):
        engine = StreamEngine(pane_seconds=60.0)
        engine.register_view("w", WindowSpec.tumbling(60.0))
        merger = FederatedStreamMerger({"a": engine})
        with pytest.raises(StreamError):
            merger.merged("t", "w")


class TestMergedMatchesMonolithic:
    @pytest.mark.parametrize("n_members", [2, 4])
    def test_windows_fold_exactly(self, n_members):
        records = workload()
        baseline = run_member(records)  # the single monolithic hive
        members = {
            name: run_member(shard)
            for name, shard in shard_by_ring(records, n_members).items()
        }
        merger = FederatedStreamMerger(members)
        assert merger.member_names == sorted(members)
        assert merger.tasks == ["t"]
        assert merger.views == ["w"]

        history = merger.history("t", "w")
        mono = baseline.snapshots("t", "w")
        assert [s.end for s in history] == [s.end for s in mono]
        for merged, single in zip(history, mono):
            assert merged.records == single.records
            assert merged.user_counts == single.user_counts
            assert merged.cells == single.cells
            assert merged.top_users(3) == single.top_users(3)
            # Percentiles: sketch-merge tolerance, not exact.
            assert merged.value_quantile(0.95) == pytest.approx(
                single.value_quantile(0.95), abs=8.0
            )

    def test_merged_percentiles_track_pooled_ground_truth(self):
        records = workload(n_records=2000)
        members = {
            name: run_member(shard)
            for name, shard in shard_by_ring(records, 4).items()
        }
        merger = FederatedStreamMerger(members)
        values = [float((i * 31) % 100) for i in range(2000)]
        merged_sketch = P2Quantile.merge(
            [s.value_quantiles[0.95] for s in merger.history("t", "w")]
        )
        assert merged_sketch.value() == pytest.approx(
            float(np.percentile(values, 95.0)), abs=5.0
        )


class TestBoundaries:
    def test_common_boundary_is_slowest_member(self):
        fast = run_member(workload(n_records=1200))  # windows through 1200
        slow = run_member(workload(n_records=400))  # windows through 600
        merger = FederatedStreamMerger({"fast": fast, "slow": slow})
        assert fast.latest("t", "w").end > slow.latest("t", "w").end
        assert merger.common_boundary("t", "w") == slow.latest("t", "w").end
        merged = merger.merged("t", "w")
        assert merged.end == slow.latest("t", "w").end

    def test_member_without_the_task_is_skipped(self):
        busy = run_member(workload(n_records=600))
        idle = run_member([])
        merger = FederatedStreamMerger({"busy": busy, "idle": idle})
        merged = merger.merged("t", "w")  # the newest window, [300, 600)
        assert (merged.start, merged.end) == (300.0, 600.0)
        assert sum(s.records for s in merger.history("t", "w")) == 600

    def test_explicit_boundary_selects_window(self):
        members = {
            name: run_member(shard)
            for name, shard in shard_by_ring(workload(), 2).items()
        }
        merger = FederatedStreamMerger(members)
        merged = merger.merged("t", "w", end=600.0)
        assert (merged.start, merged.end) == (300.0, 600.0)
        with pytest.raises(StreamError):
            merger.merged("t", "w", end=99999.0)

    def test_per_member_slices_partition_the_window(self):
        records = workload()
        members = {
            name: run_member(shard)
            for name, shard in shard_by_ring(records, 3).items()
        }
        merger = FederatedStreamMerger(members)
        end = merger.common_boundary("t", "w")
        slices = dict(merger.iter_member_snapshots("t", "w", end))
        merged = merger.merged("t", "w", end=end)
        assert sum(s.records for s in slices.values()) == merged.records


class TestAlertsAndDashboard:
    def test_alerts_collected_across_members(self):
        def noisy_member(records):
            sim = Simulator()
            _, pipeline, engine = build_stream(sim, allowed_lateness=600.0)
            engine.register_view("w", WindowSpec.tumbling(300.0))
            engine.register_query(
                "w", ContinuousQuery("always", rate_below(10_000.0))
            )
            replay(sim, pipeline, records, batch=40)
            engine.finalize()
            return engine

        members = {
            name: noisy_member(shard)
            for name, shard in shard_by_ring(workload(), 2).items()
        }
        merger = FederatedStreamMerger(members)
        alerts = merger.alerts()
        assert alerts
        assert {name for name, _ in alerts} == set(members)
        times = [alert.time for _, alert in alerts]
        assert times == sorted(times)
        assert merger.unacknowledged_alerts == len(alerts)

    def test_dashboard_text(self):
        members = {
            name: run_member(shard)
            for name, shard in shard_by_ring(workload(), 2).items()
        }
        merger = FederatedStreamMerger(members)
        text = merger.dashboard("w")
        assert "federated live dashboard (2 hives" in text
        assert "t/w" in text
        assert "unacknowledged" in text


class TestRouterIntegration:
    def test_from_router_reads_member_hive_engines(self, deployed, sim):
        from repro.units import HOUR

        router, devices, owner, task = deployed
        for name in router.member_names:
            router.hive(name).streams.register_view(
                "hourly", WindowSpec.tumbling(HOUR)
            )
        sim.run_until(6 * HOUR)
        for name in router.member_names:
            router.hive(name).pipeline.flush_all()
            router.hive(name).streams.finalize()
        merger = FederatedStreamMerger.from_router(router)
        assert merger.member_names == sorted(router.member_names)
        merged = merger.merged(task.name, "hourly")
        total = sum(
            router.hive(name).streams.stats.records_seen
            for name in router.member_names
        )
        history = merger.history(task.name, "hourly")
        assert sum(s.records for s in history) == total > 0
        assert merged.end == merger.common_boundary(task.name, "hourly")
