"""Fixtures for federation-tier tests: a small multi-hive deployment."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apisense.hive import Hive
from repro.apisense.honeycomb import Honeycomb
from repro.apisense.tasks import SensingTask
from repro.federation import FederationRouter
from repro.mobility.generator import GeneratorConfig, MobilityGenerator
from repro.simulation import Simulator
from repro.units import DAY
from tests.apisense.conftest import build_device


@pytest.fixture()
def sim() -> Simulator:
    return Simulator()


@pytest.fixture(scope="session")
def sensor_suite(test_city):
    from repro.apisense.sensors import default_sensor_suite

    return default_sensor_suite(test_city, np.random.default_rng(3))


@pytest.fixture(scope="session")
def fed_population():
    """8 users x 1 day: one crowd to shard across member hives."""
    return MobilityGenerator(
        GeneratorConfig(n_users=8, n_days=1, sampling_period=300.0)
    ).generate(seed=41)


def build_router(
    sim: Simulator, n_hives: int, transport=None, replicas: int = 128
) -> FederationRouter:
    router = FederationRouter(sim, control_transport=transport, replicas=replicas)
    for index in range(n_hives):
        router.join(f"hive-{index}", Hive(sim, seed=index))
    return router


def populate(router, population, sensor_suite, n_devices: int | None = None):
    """Register one device per user through the router's placement."""
    devices = []
    count = n_devices or len(population.dataset.users)
    for index in range(count):
        device = build_device(population, sensor_suite, index=index)
        router.register_device(device)
        devices.append(device)
    return devices


def gps_task(name: str = "fed-task", end: float = DAY) -> SensingTask:
    return SensingTask(
        name=name,
        sensors=("gps",),
        sampling_period=600.0,
        upload_period=1800.0,
        end=end,
    )


@pytest.fixture()
def federation(sim, fed_population, sensor_suite):
    """A 3-member federation homing the 8-user crowd, ideal control plane."""
    router = build_router(sim, 3)
    devices = populate(router, fed_population, sensor_suite)
    return router, devices


@pytest.fixture()
def deployed(federation, sim):
    """The federation mid-campaign: one syndicated task, everyone offered."""
    router, devices = federation
    owner = Honeycomb("lab", router.hive("hive-0"))
    task = gps_task()
    router.syndicate(task, owner, home="hive-0")
    return router, devices, owner, task
