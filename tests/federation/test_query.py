"""FederatedDataset: cross-store scans and aggregate merging."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apisense.device import SensorRecord
from repro.errors import StoreError
from repro.federation import ConsistentHashRing, FederatedDataset
from repro.geo.point import GeoPoint
from repro.store import DatasetStore

N_USERS = 30
RECORDS_PER_USER = 40
TASK = "fed-query"


def make_records() -> list[SensorRecord]:
    records = []
    for u in range(N_USERS):
        for i in range(RECORDS_PER_USER):
            records.append(
                SensorRecord(
                    device_id=f"dev-{u:03d}",
                    user=f"user-{u:03d}",
                    task=TASK,
                    time=600.0 * i + u,
                    values={
                        "gps": GeoPoint(44.8 + 0.001 * u, -0.6 + 0.001 * i),
                        "noise": float(u * 100 + i),
                    },
                )
            )
    return records


@pytest.fixture(scope="module")
def baseline() -> DatasetStore:
    """Everything in one store: the single-hive ground truth."""
    store = DatasetStore(n_shards=4)
    store.append(make_records(), ingest_time=90_000.0)
    return store


def shard_records(n_members: int):
    """The same records split across member stores by device placement."""
    ring = ConsistentHashRing()
    stores = {}
    for index in range(n_members):
        name = f"hive-{index}"
        ring.add(name)
        stores[name] = DatasetStore(n_shards=4)
    groups: dict[str, list[SensorRecord]] = {name: [] for name in stores}
    for record in make_records():
        groups[ring.place(record.device_id)].append(record)
    for name, records in groups.items():
        stores[name].append(records, ingest_time=90_000.0)
    return stores


@pytest.fixture(scope="module", params=[1, 3])
def federated(request) -> FederatedDataset:
    return FederatedDataset(shard_records(request.param))


class TestScanMerge:
    def test_full_scan_matches_baseline_count(self, federated, baseline):
        merged = federated.scan(TASK)
        assert len(merged) == len(baseline.scan(TASK)) == N_USERS * RECORDS_PER_USER
        assert federated.n_records == baseline.n_records

    def test_merged_rows_equal_baseline_rows(self, federated, baseline):
        """Same (user, time, lat, lon, value) multiset — the user-id
        remapping across member tables must not scramble attribution."""
        merged = sorted(federated.scan(TASK).rows())
        single = sorted(baseline.scan(TASK).rows())
        assert merged == single

    def test_time_and_bbox_filters_compose(self, federated, baseline):
        bbox = (44.80, -0.59, 44.82, -0.57)
        merged = federated.scan(TASK, t0=3000.0, t1=12_000.0, bbox=bbox)
        single = baseline.scan(TASK, t0=3000.0, t1=12_000.0, bbox=bbox)
        assert len(merged) == len(single)
        assert sorted(merged.rows()) == sorted(single.rows())

    def test_user_scan_touches_one_member(self, federated, baseline):
        user = "user-007"
        merged = federated.scan_user(TASK, user)
        assert len(merged) == RECORDS_PER_USER
        assert set(merged.user_names()) == {user}

    def test_empty_scan(self, federated):
        assert len(federated.scan("no-such-task")) == 0
        assert len(federated.scan(TASK, t0=1e9)) == 0

    def test_user_table_is_deduplicated(self, federated):
        merged = federated.scan(TASK)
        assert len(merged.user_table) == N_USERS
        assert len(set(merged.user_table)) == N_USERS
        assert int(merged.user_id.max()) == N_USERS - 1


class TestAggregateMerge:
    def test_counts_users_cells_merge_exactly(self, federated, baseline):
        merged = federated.aggregate(TASK)
        single = baseline.aggregate(TASK)
        assert merged.records == single.records
        assert merged.gps_records == single.gps_records
        assert merged.n_users == single.n_users == N_USERS
        assert merged.coverage_cells == single.coverage_cells
        assert merged.first_time == single.first_time
        assert merged.last_time == single.last_time
        assert merged.lag_mean == pytest.approx(single.lag_mean)

    def test_percentiles_are_worst_member(self, federated):
        merged = federated.aggregate(TASK)
        assert merged.lag_p95 == max(
            member.lag_p95 for member in merged.per_member.values()
        )
        assert merged.lag_max == max(
            member.lag_max for member in merged.per_member.values()
        )

    def test_unknown_task_raises(self, federated):
        with pytest.raises(StoreError):
            federated.aggregate("no-such-task")

    def test_mismatched_cell_size_raises(self):
        a = DatasetStore(coverage_cell_deg=0.005)
        b = DatasetStore(coverage_cell_deg=0.01)
        records = make_records()
        a.append(records[: len(records) // 2])
        b.append(records[len(records) // 2 :])
        federated = FederatedDataset({"a": a, "b": b})
        with pytest.raises(StoreError):
            federated.aggregate(TASK)

    def test_to_text_mentions_members(self, federated):
        text = federated.aggregate(TASK).to_text()
        assert "federated task" in text
        for name in federated.member_names:
            assert name in text


class TestConstruction:
    def test_empty_membership_rejected(self):
        with pytest.raises(StoreError):
            FederatedDataset({})

    def test_unknown_member_store_rejected(self, federated):
        with pytest.raises(StoreError):
            federated.store("nope")

    def test_tasks_union(self, federated):
        assert federated.tasks == [TASK]
