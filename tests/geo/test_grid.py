"""Unit tests for the spatial grid."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import GeoError
from repro.geo.bbox import BoundingBox
from repro.geo.distance import haversine_m
from repro.geo.grid import SpatialGrid
from repro.geo.point import GeoPoint

BOX = BoundingBox(south=44.80, west=-0.65, north=44.88, east=-0.50)


@pytest.fixture()
def grid() -> SpatialGrid:
    return SpatialGrid(bbox=BOX, cell_size_m=500.0)


class TestConstruction:
    def test_dimensions_cover_box(self, grid):
        # The box is ~8.9 km tall and ~11.8 km wide at this latitude.
        assert grid.rows >= 17
        assert grid.cols >= 23
        assert grid.n_cells == grid.rows * grid.cols

    def test_zero_cell_size_rejected(self):
        with pytest.raises(GeoError):
            SpatialGrid(bbox=BOX, cell_size_m=0.0)

    def test_tiny_box_has_one_cell(self):
        tiny = BoundingBox(south=44.80, west=-0.65, north=44.8001, east=-0.6499)
        grid = SpatialGrid(bbox=tiny, cell_size_m=500.0)
        assert grid.rows == 1 and grid.cols == 1


class TestCellMapping:
    def test_south_west_corner_is_origin_cell(self, grid):
        assert grid.cell_of(BOX.south_west) == (0, 0)

    def test_outside_points_clamp(self, grid):
        far_south = GeoPoint(44.0, -0.6)
        row, col = grid.cell_of(far_south)
        assert row == 0
        far_east = GeoPoint(44.84, 0.5)
        row, col = grid.cell_of(far_east)
        assert col == grid.cols - 1

    def test_center_of_out_of_range_raises(self, grid):
        with pytest.raises(GeoError):
            grid.center_of((grid.rows, 0))
        with pytest.raises(GeoError):
            grid.center_of((0, -1))

    @given(
        st.floats(min_value=44.80, max_value=44.88),
        st.floats(min_value=-0.65, max_value=-0.50),
    )
    def test_snap_moves_at_most_half_diagonal(self, lat, lon):
        grid = SpatialGrid(bbox=BOX, cell_size_m=500.0)
        point = GeoPoint(lat, lon)
        snapped = grid.snap(point)
        # Half the diagonal of a 500 m cell is ~354 m.
        assert haversine_m(point, snapped) <= 360.0

    @given(
        st.floats(min_value=44.80, max_value=44.88),
        st.floats(min_value=-0.65, max_value=-0.50),
    )
    def test_snap_is_idempotent(self, lat, lon):
        grid = SpatialGrid(bbox=BOX, cell_size_m=500.0)
        once = grid.snap(GeoPoint(lat, lon))
        twice = grid.snap(once)
        assert haversine_m(once, twice) < 1e-6

    def test_center_roundtrip(self, grid):
        for cell in [(0, 0), (3, 5), (grid.rows - 1, grid.cols - 1)]:
            assert grid.cell_of(grid.center_of(cell)) == cell


class TestNeighbours:
    def test_interior_cell_has_four(self, grid):
        assert len(grid.neighbours((2, 2))) == 4

    def test_corner_has_two(self, grid):
        assert len(grid.neighbours((0, 0))) == 2

    def test_edge_has_three(self, grid):
        assert len(grid.neighbours((0, 2))) == 3

    def test_all_cells_enumeration(self, grid):
        cells = grid.all_cells()
        assert len(cells) == grid.n_cells
        assert len(set(cells)) == grid.n_cells
