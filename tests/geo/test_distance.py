"""Unit tests for great-circle distances and interpolation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geo.distance import centroid, haversine_m, interpolate, path_length_m
from repro.geo.point import GeoPoint

city_lats = st.floats(min_value=44.0, max_value=45.0, allow_nan=False)
city_lons = st.floats(min_value=-1.0, max_value=0.0, allow_nan=False)
city_points = st.builds(GeoPoint, city_lats, city_lons)


class TestHaversine:
    def test_zero_distance(self):
        point = GeoPoint(44.8378, -0.5792)
        assert haversine_m(point, point) == 0.0

    def test_known_distance_one_degree_latitude(self):
        # One degree of latitude is ~111.2 km everywhere.
        a = GeoPoint(44.0, -0.5)
        b = GeoPoint(45.0, -0.5)
        assert haversine_m(a, b) == pytest.approx(111_195, rel=0.01)

    def test_longitude_shrinks_with_latitude(self):
        at_equator = haversine_m(GeoPoint(0.0, 0.0), GeoPoint(0.0, 1.0))
        at_60 = haversine_m(GeoPoint(60.0, 0.0), GeoPoint(60.0, 1.0))
        assert at_60 == pytest.approx(at_equator / 2.0, rel=0.01)

    @given(city_points, city_points)
    def test_symmetry(self, a, b):
        assert haversine_m(a, b) == pytest.approx(haversine_m(b, a), rel=1e-12)

    @given(city_points, city_points, city_points)
    def test_triangle_inequality(self, a, b, c):
        direct = haversine_m(a, c)
        detour = haversine_m(a, b) + haversine_m(b, c)
        assert direct <= detour + 1e-6

    @given(city_points, city_points)
    def test_non_negative(self, a, b):
        assert haversine_m(a, b) >= 0.0


class TestPathLength:
    def test_empty_and_single(self):
        assert path_length_m([]) == 0.0
        assert path_length_m([GeoPoint(44.0, 0.0)]) == 0.0

    def test_sums_segments(self):
        a, b, c = GeoPoint(44.0, 0.0), GeoPoint(44.01, 0.0), GeoPoint(44.02, 0.0)
        total = path_length_m([a, b, c])
        assert total == pytest.approx(haversine_m(a, b) + haversine_m(b, c))

    def test_accepts_generator(self):
        points = (GeoPoint(44.0 + 0.001 * i, 0.0) for i in range(3))
        assert path_length_m(points) > 0.0


class TestInterpolate:
    def test_endpoints(self):
        a, b = GeoPoint(44.0, -0.5), GeoPoint(45.0, -0.6)
        assert interpolate(a, b, 0.0) == a
        assert interpolate(a, b, 1.0) == b

    def test_midpoint(self):
        a, b = GeoPoint(44.0, -0.6), GeoPoint(44.2, -0.4)
        mid = interpolate(a, b, 0.5)
        assert mid.lat == pytest.approx(44.1)
        assert mid.lon == pytest.approx(-0.5)

    @given(city_points, city_points, st.floats(min_value=0.0, max_value=1.0))
    def test_interpolated_point_between(self, a, b, fraction):
        mid = interpolate(a, b, fraction)
        assert min(a.lat, b.lat) - 1e-9 <= mid.lat <= max(a.lat, b.lat) + 1e-9
        assert min(a.lon, b.lon) - 1e-9 <= mid.lon <= max(a.lon, b.lon) + 1e-9


class TestCentroid:
    def test_single_point(self):
        point = GeoPoint(44.0, -0.5)
        assert centroid([point]) == point

    def test_mean_of_square(self):
        points = [
            GeoPoint(44.0, -0.5),
            GeoPoint(44.2, -0.5),
            GeoPoint(44.0, -0.3),
            GeoPoint(44.2, -0.3),
        ]
        center = centroid(points)
        assert center.lat == pytest.approx(44.1)
        assert center.lon == pytest.approx(-0.4)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            centroid([])
