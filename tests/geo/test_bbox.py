"""Unit tests for bounding boxes."""

import pytest

from repro.errors import GeoError
from repro.geo.bbox import BoundingBox
from repro.geo.point import GeoPoint


class TestConstruction:
    def test_valid(self):
        box = BoundingBox(south=44.0, west=-1.0, north=45.0, east=0.0)
        assert box.center == GeoPoint(44.5, -0.5)

    def test_inverted_latitudes_rejected(self):
        with pytest.raises(GeoError):
            BoundingBox(south=45.0, west=-1.0, north=44.0, east=0.0)

    def test_inverted_longitudes_rejected(self):
        with pytest.raises(GeoError):
            BoundingBox(south=44.0, west=0.0, north=45.0, east=-1.0)

    def test_degenerate_point_box_allowed(self):
        box = BoundingBox(south=44.0, west=-1.0, north=44.0, east=-1.0)
        assert box.contains(GeoPoint(44.0, -1.0))


class TestAround:
    def test_single_point(self):
        point = GeoPoint(44.5, -0.5)
        box = BoundingBox.around([point])
        assert box.south == box.north == 44.5
        assert box.contains(point)

    def test_covers_all_points(self):
        points = [GeoPoint(44.0, -1.0), GeoPoint(45.0, 0.0), GeoPoint(44.5, -0.5)]
        box = BoundingBox.around(points)
        assert all(box.contains(p) for p in points)
        assert box.south == 44.0 and box.north == 45.0
        assert box.west == -1.0 and box.east == 0.0

    def test_empty_raises(self):
        with pytest.raises(GeoError):
            BoundingBox.around([])


class TestOperations:
    BOX = BoundingBox(south=44.0, west=-1.0, north=45.0, east=0.0)

    def test_contains_edges_inclusive(self):
        assert self.BOX.contains(GeoPoint(44.0, -1.0))
        assert self.BOX.contains(GeoPoint(45.0, 0.0))

    def test_does_not_contain_outside(self):
        assert not self.BOX.contains(GeoPoint(43.999, -0.5))
        assert not self.BOX.contains(GeoPoint(44.5, 0.001))

    def test_expanded_grows_every_side(self):
        grown = self.BOX.expanded(0.1)
        assert grown.south == pytest.approx(43.9)
        assert grown.north == pytest.approx(45.1)
        assert grown.west == pytest.approx(-1.1)
        assert grown.east == pytest.approx(0.1)

    def test_expanded_clamps_at_world_edges(self):
        world = BoundingBox(south=-89.99, west=-179.99, north=89.99, east=179.99)
        grown = world.expanded(1.0)
        assert grown.south == -90.0 and grown.north == 90.0
        assert grown.west == -180.0 and grown.east == 180.0

    def test_union(self):
        other = BoundingBox(south=44.5, west=-0.5, north=46.0, east=1.0)
        union = self.BOX.union(other)
        assert union.south == 44.0 and union.north == 46.0
        assert union.west == -1.0 and union.east == 1.0

    def test_union_commutative(self):
        other = BoundingBox(south=43.0, west=-2.0, north=44.5, east=-0.5)
        assert self.BOX.union(other) == other.union(self.BOX)

    def test_corners(self):
        assert self.BOX.south_west == GeoPoint(44.0, -1.0)
        assert self.BOX.north_east == GeoPoint(45.0, 0.0)
