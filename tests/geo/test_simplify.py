"""Unit tests for Douglas-Peucker simplification."""

import numpy as np
import pytest

from repro.errors import TrajectoryError
from repro.geo.distance import haversine_m
from repro.geo.point import GeoPoint, Record
from repro.geo.simplify import compression_ratio, douglas_peucker
from repro.geo.trajectory import Trajectory
from tests.conftest import make_trajectory


class TestValidation:
    def test_bad_tolerance(self, straight_line_trajectory):
        with pytest.raises(TrajectoryError):
            douglas_peucker(straight_line_trajectory, 0.0)

    def test_short_trajectory_passthrough(self):
        two = make_trajectory(points=[(44.8, -0.58), (44.81, -0.58)], times=[0.0, 60.0])
        assert douglas_peucker(two, 50.0).records == two.records


class TestSimplification:
    def test_straight_line_collapses_to_endpoints(self, straight_line_trajectory):
        simplified = douglas_peucker(straight_line_trajectory, tolerance_m=5.0)
        assert len(simplified) == 2
        assert simplified.records[0] == straight_line_trajectory.records[0]
        assert simplified.records[-1] == straight_line_trajectory.records[-1]

    def test_corner_is_kept(self):
        # An L-shaped path: the corner must survive any sane tolerance.
        points = [(44.80, -0.58), (44.81, -0.58), (44.82, -0.58),
                  (44.82, -0.57), (44.82, -0.56)]
        trajectory = make_trajectory(points=points, times=[60.0 * i for i in range(5)])
        simplified = douglas_peucker(trajectory, tolerance_m=50.0)
        corner = GeoPoint(44.82, -0.58)
        assert any(haversine_m(r.point, corner) < 1.0 for r in simplified)

    def test_error_bound_respected(self, medium_population):
        """Douglas-Peucker's guarantee is *spatial*: every original point
        lies within the tolerance of the simplified polyline.  (Time
        alignment is intentionally not preserved — dwell records are
        removed wholesale.)"""
        from repro.geo.projection import LocalProjection
        from repro.geo.simplify import _perpendicular_distance

        tolerance = 50.0
        trajectory = medium_population.dataset.get(medium_population.dataset.users[0])
        day = trajectory.split_by_day()[0]
        simplified = douglas_peucker(day, tolerance)

        projection = LocalProjection(day.bounding_box.center)
        polyline = [projection.to_xy(p) for p in simplified.points]
        for record in day:
            point = projection.to_xy(record.point)
            nearest = min(
                _perpendicular_distance(point, a, b)
                for a, b in zip(polyline, polyline[1:])
            )
            assert nearest <= tolerance + 1.0

    def test_noise_compresses_heavily(self):
        rng = np.random.default_rng(4)
        records = [
            Record(
                point=GeoPoint(44.8 + float(rng.normal(0, 5e-5)),
                               -0.58 + float(rng.normal(0, 5e-5))),
                time=60.0 * i,
            )
            for i in range(200)
        ]
        trajectory = Trajectory.from_records("u", records)
        simplified = douglas_peucker(trajectory, tolerance_m=30.0)
        assert compression_ratio(trajectory, simplified) > 0.9

    def test_tighter_tolerance_keeps_more(self, medium_population):
        trajectory = medium_population.dataset.get(medium_population.dataset.users[0])
        day = trajectory.split_by_day()[0]
        fine = douglas_peucker(day, 10.0)
        coarse = douglas_peucker(day, 200.0)
        assert len(fine) >= len(coarse)

    def test_timestamps_preserved(self, straight_line_trajectory):
        simplified = douglas_peucker(straight_line_trajectory, 5.0)
        original_times = {r.time for r in straight_line_trajectory}
        assert all(r.time in original_times for r in simplified)
