"""Unit tests for GeoPoint and Record."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import GeoError
from repro.geo.point import GeoPoint, Record

valid_lats = st.floats(min_value=-90.0, max_value=90.0, allow_nan=False)
valid_lons = st.floats(min_value=-180.0, max_value=180.0, allow_nan=False)


class TestGeoPoint:
    def test_valid_construction(self):
        point = GeoPoint(44.8378, -0.5792)
        assert point.lat == 44.8378
        assert point.lon == -0.5792

    @pytest.mark.parametrize("lat", [-90.001, 90.001, 180.0, -1000.0])
    def test_latitude_out_of_range(self, lat):
        with pytest.raises(GeoError):
            GeoPoint(lat, 0.0)

    @pytest.mark.parametrize("lon", [-180.001, 180.001, 360.0])
    def test_longitude_out_of_range(self, lon):
        with pytest.raises(GeoError):
            GeoPoint(0.0, lon)

    def test_nan_rejected(self):
        with pytest.raises(GeoError):
            GeoPoint(math.nan, 0.0)

    def test_poles_and_antimeridian_accepted(self):
        GeoPoint(90.0, 180.0)
        GeoPoint(-90.0, -180.0)

    def test_hashable_and_equal(self):
        assert GeoPoint(1.0, 2.0) == GeoPoint(1.0, 2.0)
        assert len({GeoPoint(1.0, 2.0), GeoPoint(1.0, 2.0)}) == 1

    def test_immutable(self):
        point = GeoPoint(1.0, 2.0)
        with pytest.raises(AttributeError):
            point.lat = 3.0

    @given(valid_lats, valid_lons)
    def test_any_valid_pair_constructs(self, lat, lon):
        point = GeoPoint(lat, lon)
        assert point.lat == lat
        assert point.lon == lon

    def test_str_format(self):
        assert str(GeoPoint(44.8378, -0.5792)) == "(44.837800, -0.579200)"


class TestRecord:
    def test_accessors(self):
        record = Record(point=GeoPoint(1.0, 2.0), time=42.0)
        assert record.lat == 1.0
        assert record.lon == 2.0
        assert record.time == 42.0

    def test_moved_keeps_time(self):
        record = Record(point=GeoPoint(1.0, 2.0), time=42.0)
        moved = record.moved(GeoPoint(3.0, 4.0))
        assert moved.time == 42.0
        assert moved.point == GeoPoint(3.0, 4.0)
        assert record.point == GeoPoint(1.0, 2.0)  # original untouched

    def test_shifted_keeps_point(self):
        record = Record(point=GeoPoint(1.0, 2.0), time=42.0)
        shifted = record.shifted(-10.0)
        assert shifted.time == 32.0
        assert shifted.point == record.point

    @given(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False))
    def test_shift_roundtrip(self, delta):
        record = Record(point=GeoPoint(0.0, 0.0), time=1000.0)
        assert record.shifted(delta).shifted(-delta).time == pytest.approx(1000.0)
