"""Unit tests for the local ENU projection."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geo.distance import haversine_m
from repro.geo.point import GeoPoint
from repro.geo.projection import LocalProjection

ORIGIN = GeoPoint(44.8378, -0.5792)

nearby_lats = st.floats(min_value=44.7, max_value=45.0, allow_nan=False)
nearby_lons = st.floats(min_value=-0.8, max_value=-0.4, allow_nan=False)


class TestLocalProjection:
    def test_origin_maps_to_zero(self):
        projection = LocalProjection(ORIGIN)
        assert projection.to_xy(ORIGIN) == (0.0, 0.0)

    def test_north_is_positive_y(self):
        projection = LocalProjection(ORIGIN)
        _, y = projection.to_xy(GeoPoint(ORIGIN.lat + 0.01, ORIGIN.lon))
        assert y > 0

    def test_east_is_positive_x(self):
        projection = LocalProjection(ORIGIN)
        x, _ = projection.to_xy(GeoPoint(ORIGIN.lat, ORIGIN.lon + 0.01))
        assert x > 0

    @given(nearby_lats, nearby_lons)
    def test_roundtrip(self, lat, lon):
        projection = LocalProjection(ORIGIN)
        point = GeoPoint(lat, lon)
        x, y = projection.to_xy(point)
        back = projection.to_point(x, y)
        assert back.lat == pytest.approx(lat, abs=1e-9)
        assert back.lon == pytest.approx(lon, abs=1e-9)

    def test_projection_matches_haversine_at_city_scale(self):
        projection = LocalProjection(ORIGIN)
        target = GeoPoint(ORIGIN.lat + 0.02, ORIGIN.lon + 0.03)
        x, y = projection.to_xy(target)
        planar = (x**2 + y**2) ** 0.5
        true_distance = haversine_m(ORIGIN, target)
        assert planar == pytest.approx(true_distance, rel=0.002)

    @given(
        nearby_lats,
        nearby_lons,
        st.floats(min_value=-2000, max_value=2000),
        st.floats(min_value=-2000, max_value=2000),
    )
    def test_translate_moves_by_requested_metres(self, lat, lon, dx, dy):
        projection = LocalProjection(ORIGIN)
        start = GeoPoint(lat, lon)
        moved = projection.translate(start, dx, dy)
        expected = (dx**2 + dy**2) ** 0.5
        assert haversine_m(start, moved) == pytest.approx(expected, rel=0.01, abs=0.5)

    def test_translate_zero_is_identity(self):
        projection = LocalProjection(ORIGIN)
        point = GeoPoint(44.9, -0.6)
        moved = projection.translate(point, 0.0, 0.0)
        assert moved.lat == pytest.approx(point.lat, abs=1e-12)
        assert moved.lon == pytest.approx(point.lon, abs=1e-12)
