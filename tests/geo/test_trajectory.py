"""Unit and property tests for trajectories."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TrajectoryError
from repro.geo.distance import haversine_m
from repro.geo.point import GeoPoint, Record
from repro.geo.trajectory import Trajectory
from repro.units import DAY
from tests.conftest import make_trajectory


def _records(n: int, dt: float = 60.0, dlat: float = 0.001) -> list[Record]:
    return [
        Record(point=GeoPoint(44.8 + dlat * i, -0.58), time=dt * i) for i in range(n)
    ]


class TestInvariants:
    def test_empty_rejected(self):
        with pytest.raises(TrajectoryError):
            Trajectory(user="u", records=())

    def test_non_increasing_time_rejected(self):
        records = (_records(1)[0], Record(point=GeoPoint(44.9, -0.58), time=0.0))
        with pytest.raises(TrajectoryError):
            Trajectory(user="u", records=records)

    def test_equal_times_rejected(self):
        a = Record(point=GeoPoint(44.8, -0.58), time=5.0)
        b = Record(point=GeoPoint(44.9, -0.58), time=5.0)
        with pytest.raises(TrajectoryError):
            Trajectory(user="u", records=(a, b))

    def test_from_records_sorts_and_dedupes(self):
        shuffled = [_records(5)[i] for i in (3, 1, 4, 0, 2)]
        shuffled.append(Record(point=GeoPoint(44.99, -0.58), time=60.0))  # duplicate t
        trajectory = Trajectory.from_records("u", shuffled)
        assert len(trajectory) == 5
        times = [r.time for r in trajectory]
        assert times == sorted(times)


class TestBasicProperties:
    def test_duration_and_times(self):
        trajectory = Trajectory(user="u", records=tuple(_records(5)))
        assert trajectory.start_time == 0.0
        assert trajectory.end_time == 240.0
        assert trajectory.duration == 240.0

    def test_length_sums_segments(self):
        trajectory = Trajectory(user="u", records=tuple(_records(3)))
        expected = sum(
            haversine_m(a.point, b.point)
            for a, b in zip(trajectory.records, trajectory.records[1:])
        )
        assert trajectory.length_m == pytest.approx(expected)

    def test_speeds_length(self):
        trajectory = Trajectory(user="u", records=tuple(_records(5)))
        assert len(trajectory.speeds()) == 4
        assert all(s > 0 for s in trajectory.speeds())

    def test_mean_speed(self):
        trajectory = Trajectory(user="u", records=tuple(_records(5)))
        assert trajectory.mean_speed() == pytest.approx(
            trajectory.length_m / trajectory.duration
        )

    def test_single_record_trajectory(self):
        trajectory = Trajectory(user="u", records=tuple(_records(1)))
        assert trajectory.duration == 0.0
        assert trajectory.length_m == 0.0
        assert trajectory.mean_speed() == 0.0


class TestTransforms:
    def test_map_points_keeps_times(self):
        trajectory = Trajectory(user="u", records=tuple(_records(4)))
        shifted = trajectory.map_points(
            lambda r: GeoPoint(r.lat + 0.01, r.lon)
        )
        assert [r.time for r in shifted] == [r.time for r in trajectory]
        assert all(s.lat == pytest.approx(o.lat + 0.01) for s, o in zip(shifted, trajectory))

    def test_renamed(self):
        trajectory = make_trajectory(user="alice")
        assert trajectory.renamed("pseudo-1").user == "pseudo-1"
        assert trajectory.renamed("pseudo-1").records == trajectory.records

    def test_slice_time_half_open(self):
        trajectory = Trajectory(user="u", records=tuple(_records(5)))
        piece = trajectory.slice_time(60.0, 180.0)
        assert piece is not None
        assert [r.time for r in piece] == [60.0, 120.0]

    def test_slice_time_empty_returns_none(self):
        trajectory = Trajectory(user="u", records=tuple(_records(5)))
        assert trajectory.slice_time(1000.0, 2000.0) is None


class TestSplitByDay:
    def test_splits_cover_all_records(self):
        records = _records(10, dt=DAY / 4)  # 2.5 days worth
        trajectory = Trajectory(user="u", records=tuple(records))
        days = trajectory.split_by_day()
        assert sum(len(d) for d in days) == len(trajectory)
        assert len(days) == 3

    def test_each_day_within_bounds(self):
        records = _records(12, dt=DAY / 4)
        trajectory = Trajectory(user="u", records=tuple(records))
        for index, day in enumerate(trajectory.split_by_day()):
            day_start = int(day.start_time // DAY)
            assert all(day_start * DAY <= r.time < (day_start + 1) * DAY for r in day)

    def test_invalid_day_length(self):
        trajectory = Trajectory(user="u", records=tuple(_records(3)))
        with pytest.raises(TrajectoryError):
            trajectory.split_by_day(day_length=0.0)


class TestResampling:
    def test_uniform_distance_spacing(self, straight_line_trajectory):
        step = 150.0
        resampled = straight_line_trajectory.resample_uniform_distance(step)
        assert len(resampled) >= 3
        for a, b in zip(resampled[:-2], resampled[1:-1]):
            assert haversine_m(a, b) == pytest.approx(step, rel=0.01)

    def test_uniform_distance_includes_endpoints(self, straight_line_trajectory):
        resampled = straight_line_trajectory.resample_uniform_distance(150.0)
        assert resampled[0] == straight_line_trajectory.points[0]
        assert resampled[-1] == straight_line_trajectory.points[-1]

    def test_chord_spacing_exact(self, straight_line_trajectory):
        step = 150.0
        resampled = straight_line_trajectory.resample_chord(step)
        assert len(resampled) >= 3
        for a, b in zip(resampled, resampled[1:]):
            assert haversine_m(a, b) == pytest.approx(step, rel=0.01)

    def test_chord_ignores_jitter_at_stop(self):
        # A user dwelling at one place with 15 m of GPS jitter: curvilinear
        # resampling leaks dozens of points, chord resampling emits none.
        import numpy as np

        rng = np.random.default_rng(5)
        records = [
            Record(
                point=GeoPoint(44.8 + float(rng.normal(0, 0.00015)),
                               -0.58 + float(rng.normal(0, 0.0002))),
                time=60.0 * i,
            )
            for i in range(200)
        ]
        trajectory = Trajectory.from_records("u", records)
        assert trajectory.length_m > 2000  # jitter accumulates real path length
        chord = trajectory.resample_chord(100.0)
        curvilinear = trajectory.resample_uniform_distance(100.0)
        assert len(chord) <= 3
        assert len(curvilinear) > 10

    def test_invalid_steps(self, straight_line_trajectory):
        with pytest.raises(TrajectoryError):
            straight_line_trajectory.resample_uniform_distance(0.0)
        with pytest.raises(TrajectoryError):
            straight_line_trajectory.resample_chord(-5.0)

    @given(st.floats(min_value=50.0, max_value=500.0))
    @settings(max_examples=20, deadline=None)
    def test_chord_consecutive_distance_never_exceeds_step_much(self, step):
        points = [(44.80 + 0.002 * i, -0.58 + 0.001 * (i % 3)) for i in range(8)]
        trajectory = make_trajectory(points=points, times=[60.0 * i for i in range(8)])
        resampled = trajectory.resample_chord(step)
        for a, b in zip(resampled, resampled[1:]):
            assert haversine_m(a, b) <= step * 1.05


class TestPointAtTime:
    def test_clamps_outside_span(self, straight_line_trajectory):
        trajectory = straight_line_trajectory
        assert trajectory.point_at_time(-100.0) == trajectory.points[0]
        assert trajectory.point_at_time(1e9) == trajectory.points[-1]

    def test_exact_record_times(self, straight_line_trajectory):
        for record in straight_line_trajectory:
            interpolated = straight_line_trajectory.point_at_time(record.time)
            assert haversine_m(interpolated, record.point) < 0.5

    def test_midpoint_interpolation(self):
        trajectory = make_trajectory(
            points=[(44.80, -0.58), (44.82, -0.58)], times=[0.0, 100.0]
        )
        mid = trajectory.point_at_time(50.0)
        assert mid.lat == pytest.approx(44.81)
