"""Unit tests for trajectory denoising filters."""

import numpy as np
import pytest

from repro.errors import TrajectoryError
from repro.geo.distance import haversine_m
from repro.geo.filtering import rolling_mean, rolling_median
from repro.geo.point import GeoPoint, Record
from repro.geo.trajectory import Trajectory


def _noisy_stop(n: int = 101, sigma_deg: float = 0.0002, seed: int = 3) -> Trajectory:
    """A stationary user with Gaussian fix noise."""
    rng = np.random.default_rng(seed)
    records = [
        Record(
            point=GeoPoint(
                44.8 + float(rng.normal(0, sigma_deg)),
                -0.58 + float(rng.normal(0, sigma_deg)),
            ),
            time=60.0 * i,
        )
        for i in range(n)
    ]
    return Trajectory.from_records("u", records)


ANCHOR = GeoPoint(44.8, -0.58)


@pytest.mark.parametrize("filter_fn", [rolling_median, rolling_mean])
class TestCommonBehaviour:
    def test_window_one_is_identity(self, filter_fn):
        trajectory = _noisy_stop(20)
        assert filter_fn(trajectory, 1).records == trajectory.records

    def test_even_window_rejected(self, filter_fn):
        with pytest.raises(TrajectoryError):
            filter_fn(_noisy_stop(20), 4)

    def test_zero_window_rejected(self, filter_fn):
        with pytest.raises(TrajectoryError):
            filter_fn(_noisy_stop(20), 0)

    def test_preserves_times_and_length(self, filter_fn):
        trajectory = _noisy_stop(50)
        filtered = filter_fn(trajectory, 9)
        assert len(filtered) == len(trajectory)
        assert [r.time for r in filtered] == [r.time for r in trajectory]

    def test_short_trajectory_passthrough(self, filter_fn):
        trajectory = _noisy_stop(2)
        assert filter_fn(trajectory, 9).records == trajectory.records


class TestDenoisingPower:
    def test_median_shrinks_noise_at_stop(self):
        trajectory = _noisy_stop(101)
        filtered = rolling_median(trajectory, 15)
        raw_error = np.mean([haversine_m(r.point, ANCHOR) for r in trajectory])
        filtered_error = np.mean([haversine_m(r.point, ANCHOR) for r in filtered])
        assert filtered_error < raw_error / 2

    def test_median_robust_to_heavy_tailed_noise(self):
        # Laplace-like outliers: the median barely moves, the mean does.
        rng = np.random.default_rng(11)
        records = []
        for i in range(101):
            offset = 0.00005
            if i % 10 == 0:  # occasional huge outlier
                offset = 0.01
            records.append(
                Record(
                    point=GeoPoint(
                        44.8 + float(rng.normal(0, offset)),
                        -0.58 + float(rng.normal(0, offset)),
                    ),
                    time=60.0 * i,
                )
            )
        trajectory = Trajectory.from_records("u", records)
        median_error = np.mean(
            [haversine_m(r.point, ANCHOR) for r in rolling_median(trajectory, 9)]
        )
        mean_error = np.mean(
            [haversine_m(r.point, ANCHOR) for r in rolling_mean(trajectory, 9)]
        )
        assert median_error < mean_error
