"""Unit tests for trajectory gap segmentation."""

import pytest

from repro.errors import TrajectoryError
from tests.conftest import make_trajectory


class TestSplitGaps:
    def test_no_gaps_single_segment(self):
        trajectory = make_trajectory(times=[0.0, 60.0, 120.0])
        segments = trajectory.split_gaps(max_gap=120.0)
        assert len(segments) == 1
        assert segments[0].records == trajectory.records

    def test_split_at_gap(self):
        trajectory = make_trajectory(
            points=[(44.80, -0.58)] * 5,
            times=[0.0, 60.0, 120.0, 4000.0, 4060.0],
        )
        segments = trajectory.split_gaps(max_gap=600.0)
        assert len(segments) == 2
        assert [len(s) for s in segments] == [3, 2]
        assert segments[1].start_time == 4000.0

    def test_multiple_gaps(self):
        times = [0.0, 60.0, 5000.0, 5060.0, 10000.0]
        trajectory = make_trajectory(points=[(44.80, -0.58)] * 5, times=times)
        segments = trajectory.split_gaps(max_gap=600.0)
        assert len(segments) == 3
        assert sum(len(s) for s in segments) == 5

    def test_every_record_preserved_in_order(self):
        times = [0.0, 100.0, 10_000.0, 10_100.0]
        trajectory = make_trajectory(points=[(44.80, -0.58)] * 4, times=times)
        segments = trajectory.split_gaps(max_gap=500.0)
        flattened = [r for s in segments for r in s.records]
        assert tuple(flattened) == trajectory.records

    def test_user_propagated(self):
        trajectory = make_trajectory(user="gap-user")
        assert all(s.user == "gap-user" for s in trajectory.split_gaps(1e6))

    def test_invalid_gap_rejected(self):
        with pytest.raises(TrajectoryError):
            make_trajectory().split_gaps(0.0)

    def test_single_record(self):
        trajectory = make_trajectory(points=[(44.8, -0.58)], times=[5.0])
        segments = trajectory.split_gaps(max_gap=10.0)
        assert len(segments) == 1
        assert len(segments[0]) == 1
