"""Cross-module integration tests: the paper's claims, end to end.

Each test here corresponds to a claim from the paper (see DESIGN.md's
experiment index); the full parameter sweeps live in ``benchmarks/``.
"""

import pytest

from repro.apisense.campaign import Campaign, CampaignConfig
from repro.apisense.incentives import WinWinIncentive
from repro.apisense.tasks import SensingTask
from repro.core import (
    CrowdedPlacesObjective,
    PrivacyRequirement,
    PrivApi,
    TrafficFlowObjective,
)
from repro.crypto import DeviceContributor, ObliviousAggregator, QueryCoordinator
from repro.privacy import (
    GeoIndistinguishabilityMechanism,
    PoiAttack,
    ReidentificationAttack,
    SpeedSmoothingMechanism,
    poi_recall,
    reidentification_rate,
)
from repro.units import DAY, HOUR


class TestE1PlatformPipeline:
    """Figure 1: Honeycomb -> Hive -> devices -> Honeycomb -> PRIVAPI."""

    def test_collected_data_flows_into_privapi(self, small_population):
        campaign = Campaign(
            small_population,
            incentive=WinWinIncentive(),
            config=CampaignConfig(n_days=2, seed=11),
        )
        honeycomb = campaign.deploy(
            SensingTask(
                name="study",
                sensors=("gps",),
                sampling_period=120.0,
                upload_period=1800.0,
                end=2 * DAY,
            )
        )
        campaign.run()
        collected = honeycomb.mobility_dataset("study")
        assert len(collected) >= 2

        # A 2-day, 5-user sample is tiny; the 250 m smoothing step keeps
        # the trimmed path ends far enough from homes to clear the bar.
        result = PrivApi(
            mechanisms=[SpeedSmoothingMechanism(250.0)], seed=1
        ).publish(collected, PrivacyRequirement(max_poi_recall=0.3))
        assert result.dataset is not None
        assert result.report.chosen is not None


class TestE2GeoIndLeaks:
    """Claim: state-of-the-art protection leaves >= 60 % of POIs findable."""

    def test_sixty_percent_recall(self, medium_population):
        protected = GeoIndistinguishabilityMechanism(0.01).protect(
            medium_population.dataset, seed=3
        )
        found = PoiAttack(denoise_window=9).run(protected)
        recalls = [
            poi_recall(
                medium_population.truth.pois_of(u, min_total_dwell=2 * HOUR),
                found[u],
                radius_m=250.0,
            )
            for u in medium_population.dataset.users
        ]
        assert sum(recalls) / len(recalls) >= 0.6


class TestE3SmoothingHides:
    """Claim: speed smoothing prevents finding where users stopped."""

    def test_low_recall_after_smoothing(self, medium_population):
        protected = SpeedSmoothingMechanism(100.0).protect(
            medium_population.dataset, seed=3
        )
        found = PoiAttack(denoise_window=9).run(protected)
        recalls = [
            poi_recall(
                medium_population.truth.pois_of(u, min_total_dwell=2 * HOUR),
                found.get(u, []),
                radius_m=250.0,
            )
            for u in medium_population.dataset.users
        ]
        assert sum(recalls) / len(recalls) <= 0.3


class TestE4E5UtilitySurvives:
    """Claim: smoothed data stays useful for crowded places & traffic."""

    def test_crowded_places_utility(self, medium_population):
        smoothed = SpeedSmoothingMechanism(100.0).protect(
            medium_population.dataset, seed=3
        )
        score = CrowdedPlacesObjective().score(medium_population.dataset, smoothed)
        assert score >= 0.5

    def test_traffic_utility(self, medium_population):
        smoothed = SpeedSmoothingMechanism(100.0).protect(
            medium_population.dataset, seed=3
        )
        score = TrafficFlowObjective().score(medium_population.dataset, smoothed)
        assert score >= 0.5

    def test_smoothing_dominates_noise_at_equal_privacy(self, medium_population):
        """The crossover the paper leans on: at noise levels strong enough
        to defeat the POI attack, Laplace utility collapses below
        smoothing's."""
        smoothing = SpeedSmoothingMechanism(100.0)
        strong_noise = GeoIndistinguishabilityMechanism(0.001)
        objective = CrowdedPlacesObjective()
        smoothed = smoothing.protect(medium_population.dataset, seed=3)
        noisy = strong_noise.protect(medium_population.dataset, seed=3)
        assert objective.score(medium_population.dataset, smoothed) > objective.score(
            medium_population.dataset, noisy
        )


class TestLinkageProtection:
    """Re-identification drops under smoothing, not under moderate noise."""

    def test_linkage_ordering(self, medium_population):
        background = medium_population.dataset.slice_time(0, 3 * DAY)
        target = medium_population.dataset.slice_time(3 * DAY, 6 * DAY)
        attack = ReidentificationAttack(denoise_window=9).fit(background)

        def rate(mechanism):
            protected = mechanism.protect(target, seed=5)
            pseudo, secret = protected.pseudonymized()
            guesses = {
                p: r.guessed_user for p, r in attack.link(pseudo).items()
            }
            return reidentification_rate(secret, guesses)

        noisy_rate = rate(GeoIndistinguishabilityMechanism(0.01))
        smoothed_rate = rate(SpeedSmoothingMechanism(100.0))
        assert noisy_rate >= 0.6  # noise does not stop linkage
        assert smoothed_rate < noisy_rate


class TestSecureAggregationPipeline:
    """Campaign sensor readings aggregated without exposing individuals."""

    def test_mean_battery_without_exposure(self, small_population):
        import random

        campaign = Campaign(
            small_population, config=CampaignConfig(n_days=1, seed=13)
        )
        honeycomb = campaign.deploy(
            SensingTask(
                name="battery-study",
                sensors=("battery",),
                sampling_period=1800.0,
                upload_period=3600.0,
                end=DAY,
            )
        )
        campaign.run()
        records = honeycomb.records("battery-study")
        assert records

        coordinator = QueryCoordinator(key_bits=256, rng=random.Random(1))
        query = coordinator.open_query("mean-battery")
        aggregator = ObliviousAggregator(query)
        contributor = DeviceContributor(random.Random(2))
        readings = [float(record.values["battery"]) for record in records[:40]]
        for reading in readings:
            aggregator.accept(contributor.contribute_value(query, reading))
        mean = coordinator.decrypt_mean(query, aggregator.scalar_result(), aggregator.count)
        # The default codec keeps 3 decimals per reading.
        assert mean == pytest.approx(sum(readings) / len(readings), abs=1e-3)
