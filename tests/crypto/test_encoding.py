"""Unit tests for fixed-point encoding."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.encoding import FixedPointCodec
from repro.errors import CryptoError


class TestCodec:
    def test_default_scale(self):
        assert FixedPointCodec().scale == 1000

    def test_negative_decimals_rejected(self):
        with pytest.raises(CryptoError):
            FixedPointCodec(decimals=-1)

    @given(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False))
    @settings(max_examples=100)
    def test_roundtrip_within_precision(self, value):
        codec = FixedPointCodec(decimals=3)
        assert codec.decode(codec.encode(value)) == pytest.approx(value, abs=5e-4)

    def test_sum_decoding(self):
        codec = FixedPointCodec(decimals=2)
        values = [1.25, -0.75, 3.5]
        encoded_sum = sum(codec.encode(v) for v in values)
        assert codec.decode_sum(encoded_sum) == pytest.approx(4.0)

    def test_mean_decoding(self):
        codec = FixedPointCodec(decimals=2)
        values = [2.0, 4.0, 9.0]
        encoded_sum = sum(codec.encode(v) for v in values)
        assert codec.decode_mean(encoded_sum, 3) == pytest.approx(5.0)

    def test_mean_zero_count_rejected(self):
        with pytest.raises(CryptoError):
            FixedPointCodec().decode_mean(100, 0)

    def test_zero_decimals_rounds_to_int(self):
        codec = FixedPointCodec(decimals=0)
        assert codec.encode(3.6) == 4
        assert codec.decode(4) == 4.0
