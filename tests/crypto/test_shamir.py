"""Unit and property tests for Shamir secret sharing."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.shamir import PRIME, Share, reconstruct_secret, split_secret
from repro.errors import CryptoError

secrets = st.integers(min_value=0, max_value=PRIME - 1)


class TestSplit:
    def test_share_count(self):
        shares = split_secret(42, n_shares=5, threshold=3, rng=random.Random(1))
        assert len(shares) == 5
        assert len({s.x for s in shares}) == 5

    def test_secret_out_of_field_rejected(self):
        with pytest.raises(CryptoError):
            split_secret(PRIME, 3, 2, random.Random(1))
        with pytest.raises(CryptoError):
            split_secret(-1, 3, 2, random.Random(1))

    def test_bad_threshold_rejected(self):
        with pytest.raises(CryptoError):
            split_secret(1, 3, 0, random.Random(1))
        with pytest.raises(CryptoError):
            split_secret(1, 3, 4, random.Random(1))


class TestReconstruct:
    @given(secrets, st.integers(min_value=2, max_value=6))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_exact_threshold(self, secret, threshold):
        n = threshold + 2
        shares = split_secret(secret, n, threshold, random.Random(7))
        assert reconstruct_secret(shares[:threshold]) == secret

    @given(secrets)
    @settings(max_examples=30, deadline=None)
    def test_any_subset_works(self, secret):
        shares = split_secret(secret, 6, 3, random.Random(3))
        subset = [shares[5], shares[1], shares[3]]
        assert reconstruct_secret(subset) == secret

    def test_all_shares_work(self):
        shares = split_secret(12345, 5, 3, random.Random(2))
        assert reconstruct_secret(shares) == 12345

    def test_below_threshold_gives_wrong_secret(self):
        secret = 999_999
        shares = split_secret(secret, 5, 3, random.Random(4))
        # Statistically certain to be wrong in a 127-bit field.
        assert reconstruct_secret(shares[:2]) != secret

    def test_threshold_one_is_replication(self):
        shares = split_secret(7, 4, 1, random.Random(5))
        for share in shares:
            assert reconstruct_secret([share]) == 7

    def test_empty_rejected(self):
        with pytest.raises(CryptoError):
            reconstruct_secret([])

    def test_duplicate_x_rejected(self):
        share = Share(x=1, y=10)
        with pytest.raises(CryptoError):
            reconstruct_secret([share, share])
