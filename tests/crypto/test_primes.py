"""Unit tests for prime generation."""

import math
import random

import pytest

from repro.crypto.primes import is_probable_prime, random_coprime, random_prime
from repro.errors import CryptoError

KNOWN_PRIMES = [2, 3, 5, 7, 97, 101, 7919, 104729, (1 << 61) - 1]
KNOWN_COMPOSITES = [0, 1, 4, 9, 91, 561, 1729, 104730, (1 << 61) - 3]
# 561, 1729 are Carmichael numbers (fool Fermat, not Miller-Rabin).


class TestIsProbablePrime:
    @pytest.mark.parametrize("n", KNOWN_PRIMES)
    def test_primes_accepted(self, n):
        assert is_probable_prime(n)

    @pytest.mark.parametrize("n", KNOWN_COMPOSITES)
    def test_composites_rejected(self, n):
        assert not is_probable_prime(n)

    def test_negative_rejected(self):
        assert not is_probable_prime(-7)

    def test_against_sympy_free_sieve(self):
        # Check against a simple sieve for all n < 2000.
        limit = 2000
        sieve = [True] * limit
        sieve[0] = sieve[1] = False
        for i in range(2, int(limit**0.5) + 1):
            if sieve[i]:
                for j in range(i * i, limit, i):
                    sieve[j] = False
        for n in range(limit):
            assert is_probable_prime(n) == sieve[n], n


class TestRandomPrime:
    def test_exact_bit_length(self):
        rng = random.Random(1)
        for bits in (16, 32, 64, 128):
            p = random_prime(bits, rng)
            assert p.bit_length() == bits
            assert is_probable_prime(p)

    def test_deterministic(self):
        assert random_prime(64, random.Random(7)) == random_prime(64, random.Random(7))

    def test_too_small_rejected(self):
        with pytest.raises(CryptoError):
            random_prime(4, random.Random(1))


class TestRandomCoprime:
    def test_coprime_and_in_range(self):
        rng = random.Random(3)
        n = 3 * 5 * 7 * 11
        for _ in range(50):
            r = random_coprime(n, rng)
            assert 1 <= r < n
            assert math.gcd(r, n) == 1
