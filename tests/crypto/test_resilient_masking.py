"""Unit tests for dropout-resilient masking."""

import random

import pytest

from repro.crypto.resilient_masking import (
    MaskingDealer,
    ResilientAggregation,
    ResilientParticipant,
)
from repro.errors import ProtocolError


def setup(n=5, threshold=3, seed=1):
    dealer = MaskingDealer(n, threshold, rng=random.Random(seed))
    return dealer.deal()


class TestDealer:
    def test_validation(self):
        with pytest.raises(ProtocolError):
            MaskingDealer(1, 1)
        with pytest.raises(ProtocolError):
            MaskingDealer(4, 5)
        with pytest.raises(ProtocolError):
            MaskingDealer(4, 0)

    def test_pairwise_seeds_agree(self):
        participants = setup()
        for i in range(5):
            for j in range(i + 1, 5):
                assert participants[i]._seeds[(i, j)] == participants[j]._seeds[(i, j)]

    def test_every_participant_has_all_shares(self):
        participants = setup()
        n_pairs = 5 * 4 // 2
        for participant in participants:
            assert len(participant._shares) == n_pairs


class TestFullParticipation:
    def test_sum_recovers_without_dropout(self):
        participants = setup()
        values = [1.5, -2.0, 3.25, 0.5, 10.0]
        aggregation = ResilientAggregation(5, threshold=3)
        for participant, value in zip(participants, values):
            aggregation.accept(participant.index, participant.masked_value(value))
        assert aggregation.dropped == []
        survivors = {p.index: p for p in participants}
        total = aggregation.recover_and_sum(survivors)
        assert total == pytest.approx(sum(values))

    def test_double_submission_rejected(self):
        participants = setup()
        aggregation = ResilientAggregation(5, threshold=3)
        aggregation.accept(0, participants[0].masked_value(1.0))
        with pytest.raises(ProtocolError):
            aggregation.accept(0, participants[0].masked_value(1.0))

    def test_unknown_index_rejected(self):
        aggregation = ResilientAggregation(5, threshold=3)
        with pytest.raises(ProtocolError):
            aggregation.accept(9, 12345)


class TestDropout:
    @pytest.mark.parametrize("dropped", [[4], [0], [1, 3]])
    def test_recovery_cancels_dangling_masks(self, dropped):
        participants = setup()
        values = [1.0, 2.0, 3.0, 4.0, 5.0]
        aggregation = ResilientAggregation(5, threshold=3)
        live = [p for p in participants if p.index not in dropped]
        for participant in live:
            aggregation.accept(
                participant.index, participant.masked_value(values[participant.index])
            )
        assert set(aggregation.dropped) == set(dropped)
        survivors = {p.index: p for p in live}
        total = aggregation.recover_and_sum(survivors)
        expected = sum(v for i, v in enumerate(values) if i not in dropped)
        assert total == pytest.approx(expected)

    def test_without_recovery_sum_is_garbage(self):
        participants = setup()
        values = [1.0, 2.0, 3.0, 4.0, 5.0]
        aggregation = ResilientAggregation(5, threshold=3)
        for participant in participants[:4]:  # participant 4 drops
            aggregation.accept(
                participant.index, participant.masked_value(values[participant.index])
            )
        # Decode *without* recovery: masks toward participant 4 dangle.
        total = aggregation._total
        from repro.crypto.masking import MODULUS

        if total > MODULUS // 2:
            total -= MODULUS
        naive = aggregation.codec.decode_sum(total)
        assert naive != pytest.approx(10.0, abs=1.0)

    def test_too_few_survivors_fails(self):
        participants = setup(n=5, threshold=4)
        aggregation = ResilientAggregation(5, threshold=4)
        for participant in participants[:3]:  # 2 drop, only 3 survive < 4
            aggregation.accept(
                participant.index, participant.masked_value(1.0)
            )
        survivors = {p.index: p for p in participants[:3]}
        with pytest.raises(ProtocolError):
            aggregation.recover_and_sum(survivors)

    def test_round_separation(self):
        participants = setup()
        for round_id in (0, 1):
            aggregation = ResilientAggregation(5, threshold=3, round_id=round_id)
            for participant in participants:
                aggregation.accept(
                    participant.index,
                    participant.masked_value(2.0, round_id=round_id),
                )
            survivors = {p.index: p for p in participants}
            assert aggregation.recover_and_sum(survivors) == pytest.approx(10.0)


class TestShareAccess:
    def test_missing_share_rejected(self):
        participant = ResilientParticipant(index=0, n_participants=3)
        with pytest.raises(ProtocolError):
            participant.reveal_share((0, 1))
