"""Unit and property tests for the Paillier cryptosystem."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.paillier import generate_keypair
from repro.errors import CryptoError


@pytest.fixture(scope="module")
def keypair():
    """A 256-bit test keypair (small = fast; algebra is size-independent)."""
    return generate_keypair(bits=256, rng=random.Random(42))


plaintexts = st.integers(min_value=-(10**20), max_value=10**20)


class TestKeyGeneration:
    def test_modulus_bits(self, keypair):
        assert keypair.public_key.n.bit_length() == 256

    def test_too_small_rejected(self):
        with pytest.raises(CryptoError):
            generate_keypair(bits=32)

    def test_deterministic_with_seeded_rng(self):
        a = generate_keypair(128, random.Random(5))
        b = generate_keypair(128, random.Random(5))
        assert a.public_key.n == b.public_key.n


class TestEncryptDecrypt:
    @pytest.mark.parametrize("m", [0, 1, -1, 42, -42, 10**9, -(10**9)])
    def test_roundtrip(self, keypair, m):
        ciphertext = keypair.public_key.encrypt(m, random.Random(1))
        assert keypair.private_key.decrypt(ciphertext) == m

    @given(plaintexts)
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, m):
        keypair = generate_keypair(bits=128, rng=random.Random(9))
        assert keypair.private_key.decrypt(keypair.public_key.encrypt(m)) == m

    def test_overflow_rejected(self, keypair):
        too_big = keypair.public_key.max_plaintext + 1
        with pytest.raises(CryptoError):
            keypair.public_key.encrypt(too_big)

    def test_probabilistic_encryption(self, keypair):
        a = keypair.public_key.encrypt(7)
        b = keypair.public_key.encrypt(7)
        assert a.value != b.value  # fresh randomness each time
        assert keypair.private_key.decrypt(a) == keypair.private_key.decrypt(b)

    def test_cross_key_decrypt_rejected(self, keypair):
        other = generate_keypair(bits=128, rng=random.Random(13))
        ciphertext = other.public_key.encrypt(5)
        with pytest.raises(CryptoError):
            keypair.private_key.decrypt(ciphertext)


class TestHomomorphism:
    @given(plaintexts, plaintexts)
    @settings(max_examples=30, deadline=None)
    def test_additive(self, a, b):
        keypair = generate_keypair(bits=160, rng=random.Random(3))
        encrypted = keypair.public_key.encrypt(a) + keypair.public_key.encrypt(b)
        assert keypair.private_key.decrypt(encrypted) == a + b

    @given(plaintexts, st.integers(min_value=-1000, max_value=1000))
    @settings(max_examples=30, deadline=None)
    def test_plaintext_addition(self, a, k):
        keypair = generate_keypair(bits=160, rng=random.Random(3))
        encrypted = keypair.public_key.encrypt(a) + k
        assert keypair.private_key.decrypt(encrypted) == a + k

    @given(st.integers(min_value=-(10**9), max_value=10**9),
           st.integers(min_value=-100, max_value=100))
    @settings(max_examples=30, deadline=None)
    def test_scalar_multiplication(self, a, k):
        keypair = generate_keypair(bits=160, rng=random.Random(3))
        encrypted = keypair.public_key.encrypt(a) * k
        assert keypair.private_key.decrypt(encrypted) == a * k

    def test_subtraction(self, keypair):
        pk, sk = keypair.public_key, keypair.private_key
        assert sk.decrypt(pk.encrypt(10) - pk.encrypt(4)) == 6
        assert sk.decrypt(pk.encrypt(10) - 25) == -15

    def test_negation(self, keypair):
        assert keypair.private_key.decrypt(-keypair.public_key.encrypt(11)) == -11

    def test_sum_builtin(self, keypair):
        values = [3, -1, 4, 1, -5, 9]
        encrypted = [keypair.public_key.encrypt(v) for v in values]
        total = sum(encrypted[1:], encrypted[0])
        assert keypair.private_key.decrypt(total) == sum(values)

    def test_cross_key_add_rejected(self, keypair):
        other = generate_keypair(bits=128, rng=random.Random(21))
        with pytest.raises(CryptoError):
            _ = keypair.public_key.encrypt(1) + other.public_key.encrypt(2)


class TestRerandomization:
    def test_value_changes_plaintext_stays(self, keypair):
        ciphertext = keypair.public_key.encrypt(99, random.Random(2))
        fresh = ciphertext.rerandomized(random.Random(3))
        assert fresh.value != ciphertext.value
        assert keypair.private_key.decrypt(fresh) == 99
