"""Unit tests for the aggregator-oblivious sum/mean/histogram protocol."""

import random

import pytest

from repro.crypto.encoding import FixedPointCodec
from repro.crypto.secure_sum import (
    DeviceContributor,
    ObliviousAggregator,
    QueryCoordinator,
)
from repro.errors import ProtocolError


@pytest.fixture(scope="module")
def coordinator():
    return QueryCoordinator(key_bits=256, rng=random.Random(1))


@pytest.fixture()
def contributor():
    return DeviceContributor(rng=random.Random(2))


class TestScalarQueries:
    def test_sum_and_mean(self, coordinator, contributor):
        query = coordinator.open_query("q-sum")
        aggregator = ObliviousAggregator(query)
        values = [10.5, -3.25, 7.0, 0.125]
        for value in values:
            aggregator.accept(contributor.contribute_value(query, value))
        total = aggregator.scalar_result()
        assert coordinator.decrypt_sum(query, total) == pytest.approx(sum(values))
        assert coordinator.decrypt_mean(query, total, aggregator.count) == pytest.approx(
            sum(values) / len(values)
        )

    def test_single_contribution(self, coordinator, contributor):
        query = coordinator.open_query("q-single")
        aggregator = ObliviousAggregator(query)
        aggregator.accept(contributor.contribute_value(query, -55.5))
        assert coordinator.decrypt_sum(query, aggregator.scalar_result()) == pytest.approx(-55.5)

    def test_duplicate_query_id_rejected(self, coordinator):
        coordinator.open_query("q-dup")
        with pytest.raises(ProtocolError):
            coordinator.open_query("q-dup")

    def test_empty_aggregation_rejected(self, coordinator):
        query = coordinator.open_query("q-empty")
        aggregator = ObliviousAggregator(query)
        with pytest.raises(ProtocolError):
            aggregator.encrypted_result()

    def test_wrong_query_routing_rejected(self, coordinator, contributor):
        query_a = coordinator.open_query("q-a")
        query_b = coordinator.open_query("q-b")
        aggregator = ObliviousAggregator(query_a)
        with pytest.raises(ProtocolError):
            aggregator.accept(contributor.contribute_value(query_b, 1.0))


class TestHistogramQueries:
    def test_histogram_counts(self, coordinator, contributor):
        query = coordinator.open_query("q-hist", bins=["2g", "3g", "4g"])
        aggregator = ObliviousAggregator(query)
        votes = ["4g", "4g", "3g", "2g", "4g", "3g"]
        for vote in votes:
            aggregator.accept(contributor.contribute_category(query, vote))
        histogram = coordinator.decrypt_histogram(query, aggregator.encrypted_result())
        assert histogram == {"2g": 1, "3g": 2, "4g": 3}

    def test_unknown_bin_rejected(self, coordinator, contributor):
        query = coordinator.open_query("q-hist2", bins=["a", "b"])
        with pytest.raises(ProtocolError):
            contributor.contribute_category(query, "c")

    def test_scalar_api_on_histogram_rejected(self, coordinator, contributor):
        query = coordinator.open_query("q-hist3", bins=["a", "b"])
        aggregator = ObliviousAggregator(query)
        aggregator.accept(contributor.contribute_category(query, "a"))
        with pytest.raises(ProtocolError):
            aggregator.scalar_result()
        with pytest.raises(ProtocolError):
            coordinator.decrypt_sum(query, aggregator.encrypted_result()[0])

    def test_histogram_api_on_scalar_rejected(self, coordinator, contributor):
        query = coordinator.open_query("q-scalar2")
        with pytest.raises(ProtocolError):
            contributor.contribute_category(query, "a")
        aggregator = ObliviousAggregator(query)
        aggregator.accept(contributor.contribute_value(query, 1.0))
        with pytest.raises(ProtocolError):
            coordinator.decrypt_histogram(query, aggregator.encrypted_result())


class TestObliviousness:
    def test_aggregator_sees_only_ciphertexts(self, coordinator, contributor):
        """The aggregator's view (ciphertext values) must not betray equal
        plaintexts: two contributions of the same value look different."""
        query = coordinator.open_query("q-blind")
        first = contributor.contribute_value(query, 42.0)
        second = contributor.contribute_value(query, 42.0)
        assert first.ciphertexts[0].value != second.ciphertexts[0].value

    def test_custom_codec_precision(self, coordinator, contributor):
        query = coordinator.open_query("q-precise", codec=FixedPointCodec(decimals=6))
        aggregator = ObliviousAggregator(query)
        aggregator.accept(contributor.contribute_value(query, 0.000125))
        assert coordinator.decrypt_sum(query, aggregator.scalar_result()) == pytest.approx(
            0.000125, abs=1e-6
        )
