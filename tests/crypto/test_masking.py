"""Unit tests for pairwise additive masking."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.masking import MODULUS, MaskedAggregation, MaskingParticipant
from repro.errors import ProtocolError

SEED = b"group-secret"


def run_round(values, round_id=0):
    n = len(values)
    aggregation = MaskedAggregation(n)
    for index, value in enumerate(values):
        participant = MaskingParticipant(index, n, SEED)
        aggregation.accept(participant.masked_value(value, round_id))
    return aggregation


class TestMaskingCorrectness:
    def test_sum_recovers(self):
        values = [1.5, -2.25, 3.0, 0.125, 10.0]
        assert run_round(values).result_sum() == pytest.approx(sum(values))

    def test_mean(self):
        values = [2.0, 4.0]
        assert run_round(values).result_mean() == pytest.approx(3.0)

    def test_negative_sum(self):
        values = [-5.0, -7.5, 1.0]
        assert run_round(values).result_sum() == pytest.approx(-11.5)

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
                    min_size=2, max_size=12))
    @settings(max_examples=40, deadline=None)
    def test_sum_property(self, values):
        assert run_round(values).result_sum() == pytest.approx(sum(values), abs=0.01)

    def test_round_separation(self):
        # Different rounds use different masks but both decode correctly.
        values = [1.0, 2.0, 3.0]
        assert run_round(values, round_id=0).result_sum() == pytest.approx(6.0)
        assert run_round(values, round_id=1).result_sum() == pytest.approx(6.0)


class TestMaskingBlinding:
    def test_masked_values_look_uniform(self):
        participant = MaskingParticipant(0, 3, SEED)
        masked = participant.masked_value(5.0)
        assert masked != 5000  # not the bare encoding
        assert 0 <= masked < MODULUS

    def test_same_value_different_rounds_differ(self):
        participant = MaskingParticipant(0, 3, SEED)
        assert participant.masked_value(5.0, 0) != participant.masked_value(5.0, 1)


class TestProtocolErrors:
    def test_missing_participant_blocks_decode(self):
        aggregation = MaskedAggregation(3)
        aggregation.accept(MaskingParticipant(0, 3, SEED).masked_value(1.0))
        aggregation.accept(MaskingParticipant(1, 3, SEED).masked_value(2.0))
        with pytest.raises(ProtocolError):
            aggregation.result_sum()

    def test_extra_participant_rejected(self):
        aggregation = MaskedAggregation(2)
        aggregation.accept(MaskingParticipant(0, 2, SEED).masked_value(1.0))
        aggregation.accept(MaskingParticipant(1, 2, SEED).masked_value(2.0))
        with pytest.raises(ProtocolError):
            aggregation.accept(12345)

    def test_too_few_participants_rejected(self):
        with pytest.raises(ProtocolError):
            MaskedAggregation(1)
        with pytest.raises(ProtocolError):
            MaskingParticipant(0, 1, SEED)

    def test_index_out_of_range(self):
        with pytest.raises(ProtocolError):
            MaskingParticipant(5, 3, SEED)
