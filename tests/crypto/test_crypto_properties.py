"""Property tests for the crypto substrate (hypothesis).

Round-trip laws of the fixed-point codec — including negative values,
values near the Paillier plaintext-space edge, and homomorphic sums of
many encodings staying clear of modular wraparound — plus the masking
protocol's cancellation law over random participant sets.
"""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import FixedPointCodec, MaskedAggregation, MaskingParticipant, generate_keypair
from repro.crypto.masking import MODULUS

#: One small keypair shared by every example (keygen dominates runtime).
KEYS = generate_keypair(128, random.Random(20140901))

finite_values = st.floats(
    min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
)


class TestFixedPointCodecRoundTrip:
    @given(value=finite_values, decimals=st.integers(min_value=0, max_value=6))
    def test_round_trip_within_half_ulp(self, value, decimals):
        codec = FixedPointCodec(decimals)
        # encode() rounds to the nearest fixed-point step, so the decode
        # lands within half a step of the original (both signs).  The
        # decoded float itself carries up to ~1 ulp of representation
        # error at large magnitudes (e.g. 2**26 + fraction with
        # decimals=5), so the bound allows that on top of the half step.
        assert abs(codec.decode(codec.encode(value)) - value) <= (
            0.5 / codec.scale
        ) * (1.0 + 1e-9) + 2.0 * math.ulp(abs(value))

    @given(value=finite_values)
    def test_negative_values_encrypt_and_round_trip(self, value):
        codec = FixedPointCodec(3)
        encoded = codec.encode(value)
        decrypted = KEYS.private_key.decrypt(KEYS.public_key.encrypt(encoded))
        assert decrypted == encoded
        assert codec.decode(decrypted) == pytest.approx(value, abs=0.5 / codec.scale)

    @given(offset=st.integers(min_value=0, max_value=1000), sign=st.sampled_from([1, -1]))
    def test_values_near_plaintext_space_edge(self, offset, sign):
        # The largest representable magnitudes (n // 3) round-trip as
        # signed integers instead of wrapping into the other half-space.
        plaintext = sign * (KEYS.public_key.max_plaintext - offset)
        decrypted = KEYS.private_key.decrypt(KEYS.public_key.encrypt(plaintext))
        assert decrypted == plaintext

    @settings(deadline=None)
    @given(
        values=st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            min_size=1,
            max_size=30,
        )
    )
    def test_homomorphic_sums_do_not_wrap_around(self, values):
        # Many encodings summed under encryption decode to the sum of
        # the encodings — no wraparound while |sum| stays within the
        # signed headroom (30 * 1e6 * 10^3 << 2^128 // 3).
        codec = FixedPointCodec(3)
        encodings = [codec.encode(v) for v in values]
        assert abs(sum(encodings)) <= KEYS.public_key.max_plaintext
        total = KEYS.public_key.encrypt(encodings[0])
        for encoded in encodings[1:]:
            total = total + KEYS.public_key.encrypt(encoded)
        assert KEYS.private_key.decrypt(total) == sum(encodings)


class TestMaskingCancellation:
    @settings(deadline=None)
    @given(
        values=st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            min_size=2,
            max_size=12,
        ),
        seed=st.binary(min_size=1, max_size=16),
        round_id=st.integers(min_value=0, max_value=2**32),
    )
    def test_masks_cancel_over_random_participant_sets(self, values, seed, round_id):
        # Sum of the masked values == sum of the plaintexts: every
        # pairwise mask is added once and subtracted once.
        n = len(values)
        codec = FixedPointCodec(3)
        aggregation = MaskedAggregation(n, codec=codec)
        for index, value in enumerate(values):
            participant = MaskingParticipant(index, n, seed, codec=codec)
            aggregation.accept(participant.masked_value(value, round_id=round_id))
        expected = codec.decode_sum(sum(codec.encode(v) for v in values))
        assert aggregation.result_sum() == pytest.approx(expected, abs=1e-9)

    @given(
        values=st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            min_size=2,
            max_size=8,
        )
    )
    def test_masked_values_stay_in_modulus_range(self, values):
        n = len(values)
        for index, value in enumerate(values):
            masked = MaskingParticipant(index, n, b"range").masked_value(value)
            assert 0 <= masked < MODULUS
