"""Cross-cutting property-based tests (hypothesis).

These exercise the library's core invariants on *generated* inputs, not
the fixtures: random trajectories through the mechanism contract, random
datasets through persistence, random values through the crypto stack.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo.distance import haversine_m
from repro.geo.point import GeoPoint, Record
from repro.geo.trajectory import Trajectory
from repro.mobility.dataset import MobilityDataset
from repro.privacy.mechanisms import (
    GeoIndistinguishabilityMechanism,
    SpatialCloakingMechanism,
    SpeedSmoothingMechanism,
    TemporalDownsamplingMechanism,
)

# ----------------------------------------------------------------------
# Random trajectory strategy: a bounded random walk near Bordeaux.
# ----------------------------------------------------------------------


@st.composite
def trajectories(draw, min_records: int = 2, max_records: int = 60):
    n = draw(st.integers(min_value=min_records, max_value=max_records))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    lat, lon = 44.8378, -0.5792
    time = 0.0
    records = []
    for _ in range(n):
        lat += float(rng.normal(0, 0.001))
        lon += float(rng.normal(0, 0.001))
        time += float(rng.uniform(10.0, 600.0))
        records.append(Record(point=GeoPoint(lat, lon), time=time))
    return Trajectory(user="prop", records=tuple(records))


MECHANISM_FACTORIES = [
    lambda: GeoIndistinguishabilityMechanism(0.01),
    lambda: SpatialCloakingMechanism(300.0),
    lambda: TemporalDownsamplingMechanism(600.0),
    lambda: SpeedSmoothingMechanism(100.0),
]


class TestMechanismContractProperties:
    @pytest.mark.parametrize("factory", MECHANISM_FACTORIES)
    @given(trajectory=trajectories())
    @settings(max_examples=25, deadline=None)
    def test_output_is_valid_trajectory_or_none(self, factory, trajectory):
        mechanism = factory()
        result = mechanism.protect_trajectory(trajectory, np.random.default_rng(1))
        if result is None:
            return
        # Construction succeeded => invariants (sorted, non-empty) hold.
        assert result.user == trajectory.user
        assert result.start_time >= trajectory.start_time - 1e-9
        assert result.end_time <= trajectory.end_time + 1e-9

    @pytest.mark.parametrize("factory", MECHANISM_FACTORIES)
    @given(trajectory=trajectories())
    @settings(max_examples=15, deadline=None)
    def test_determinism_per_rng_state(self, factory, trajectory):
        mechanism = factory()
        a = mechanism.protect_trajectory(trajectory, np.random.default_rng(7))
        b = mechanism.protect_trajectory(trajectory, np.random.default_rng(7))
        if a is None or b is None:
            assert a is None and b is None
        else:
            assert a.records == b.records


class TestTrajectoryProperties:
    @given(trajectory=trajectories(min_records=3))
    @settings(max_examples=40, deadline=None)
    def test_split_by_day_partitions_records(self, trajectory):
        days = trajectory.split_by_day()
        assert sum(len(d) for d in days) == len(trajectory)
        flattened = [record for day in days for record in day]
        assert tuple(flattened) == trajectory.records

    @given(trajectory=trajectories(min_records=3), step=st.floats(100.0, 500.0))
    @settings(max_examples=30, deadline=None)
    def test_chord_resampling_spacing(self, trajectory, step):
        points = trajectory.resample_chord(step)
        for a, b in zip(points, points[1:]):
            assert haversine_m(a, b) <= step * 1.02

    @given(trajectory=trajectories(min_records=2))
    @settings(max_examples=30, deadline=None)
    def test_point_at_time_stays_in_bbox(self, trajectory):
        box = trajectory.bounding_box
        for fraction in (0.0, 0.25, 0.5, 0.75, 1.0):
            t = trajectory.start_time + fraction * trajectory.duration
            point = trajectory.point_at_time(t)
            assert box.expanded(1e-9).contains(point)

    @given(trajectory=trajectories(min_records=2))
    @settings(max_examples=30, deadline=None)
    def test_length_at_least_endpoint_distance(self, trajectory):
        direct = haversine_m(trajectory.points[0], trajectory.points[-1])
        assert trajectory.length_m >= direct - 1e-6


class TestCryptoPipelineProperties:
    @given(
        st.lists(
            st.floats(min_value=-1e5, max_value=1e5, allow_nan=False),
            min_size=1,
            max_size=15,
        )
    )
    @settings(max_examples=20, deadline=None)
    def test_paillier_secure_sum_roundtrip(self, values):
        import random

        from repro.crypto import (
            DeviceContributor,
            ObliviousAggregator,
            QueryCoordinator,
        )

        coordinator = QueryCoordinator(key_bits=128, rng=random.Random(5))
        query = coordinator.open_query("prop")
        aggregator = ObliviousAggregator(query)
        contributor = DeviceContributor(random.Random(6))
        for value in values:
            aggregator.accept(contributor.contribute_value(query, value))
        total = coordinator.decrypt_sum(query, aggregator.scalar_result())
        assert total == pytest.approx(sum(values), abs=0.001 * len(values))

    @given(
        st.lists(
            st.floats(min_value=-1e5, max_value=1e5, allow_nan=False),
            min_size=2,
            max_size=10,
        ),
        st.integers(min_value=0, max_value=3),
    )
    @settings(max_examples=20, deadline=None)
    def test_resilient_masking_with_random_dropout(self, values, n_dropped):
        import random

        from repro.crypto import MaskingDealer
        from repro.crypto.resilient_masking import ResilientAggregation

        n = len(values)
        n_dropped = min(n_dropped, n - 1)
        threshold = max(1, (n - n_dropped) // 2)
        participants = MaskingDealer(n, threshold, rng=random.Random(3)).deal()
        dropped = set(range(n_dropped))
        aggregation = ResilientAggregation(n, threshold)
        for participant in participants:
            if participant.index in dropped:
                continue
            aggregation.accept(
                participant.index,
                participant.masked_value(values[participant.index]),
            )
        survivors = {p.index: p for p in participants if p.index not in dropped}
        total = aggregation.recover_and_sum(survivors)
        expected = sum(v for i, v in enumerate(values) if i not in dropped)
        assert total == pytest.approx(expected, abs=0.01)


class TestDatasetProperties:
    @given(trajectory=trajectories(min_records=2))
    @settings(max_examples=20, deadline=None)
    def test_csv_roundtrip(self, trajectory, tmp_path_factory):
        dataset = MobilityDataset([trajectory])
        path = tmp_path_factory.mktemp("prop") / "d.csv"
        dataset.to_csv(path)
        loaded = MobilityDataset.from_csv(path)
        assert loaded.n_records == dataset.n_records
        for a, b in zip(loaded.get("prop"), dataset.get("prop")):
            assert a.time == pytest.approx(b.time, abs=2e-3)
            assert haversine_m(a.point, b.point) < 0.05

    @given(trajectory=trajectories(min_records=2))
    @settings(max_examples=20, deadline=None)
    def test_pseudonymization_preserves_content(self, trajectory):
        dataset = MobilityDataset([trajectory])
        pseudo, mapping = dataset.pseudonymized()
        (pseudonym,) = pseudo.users
        assert mapping[pseudonym] == "prop"
        assert pseudo.get(pseudonym).records == trajectory.records
