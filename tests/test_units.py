"""Unit tests for time/distance helpers."""

import pytest

from repro import units


class TestConstants:
    def test_time_ladder(self):
        assert units.MINUTE == 60 * units.SECOND
        assert units.HOUR == 60 * units.MINUTE
        assert units.DAY == 24 * units.HOUR

    def test_distance_ladder(self):
        assert units.KILOMETRE == 1000 * units.METRE


class TestKmh:
    def test_conversion(self):
        assert units.kmh(36.0) == pytest.approx(10.0)

    def test_zero(self):
        assert units.kmh(0.0) == 0.0


class TestFormatDuration:
    @pytest.mark.parametrize(
        "seconds,expected",
        [
            (42, "42s"),
            (0, "0s"),
            (90, "1m30s"),
            (3600, "1h00m"),
            (7500, "2h05m"),
            (86400, "24h00m"),
        ],
    )
    def test_cases(self, seconds, expected):
        assert units.format_duration(seconds) == expected
