"""FaultInjector: scripted outages on the event loop."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.simulation import FaultEvent, FaultInjector, Simulator


class TestFaultInjector:
    def test_outage_and_recovery_fire_in_order(self):
        sim = Simulator()
        injector = FaultInjector(sim)
        transitions = []
        injector.schedule_outage(
            "backend",
            at=10.0,
            duration=5.0,
            on_down=lambda: transitions.append(("down", sim.now)),
            on_up=lambda: transitions.append(("up", sim.now)),
        )
        sim.run_until(9.0)
        assert not injector.is_down("backend")
        sim.run_until(12.0)
        assert injector.is_down("backend")
        assert injector.down_components == ["backend"]
        sim.run_until(20.0)
        assert not injector.is_down("backend")
        assert transitions == [("down", 10.0), ("up", 15.0)]
        assert injector.log == [
            FaultEvent(10.0, "backend", "down"),
            FaultEvent(15.0, "backend", "up"),
        ]

    def test_permanent_outage(self):
        sim = Simulator()
        injector = FaultInjector(sim)
        injector.schedule_outage("backend", at=1.0)
        sim.run()
        assert injector.is_down("backend")
        assert [event.kind for event in injector.log] == ["down"]

    def test_cancel_tokens_revoke_the_script(self):
        sim = Simulator()
        injector = FaultInjector(sim)
        down_token, up_token = injector.schedule_outage("backend", at=1.0, duration=1.0)
        down_token.cancel()
        up_token.cancel()
        sim.run()
        assert injector.log == []

    def test_overlapping_scripts_do_not_double_fire(self):
        sim = Simulator()
        injector = FaultInjector(sim)
        fired = []
        injector.schedule_outage(
            "backend", at=1.0, duration=10.0, on_down=lambda: fired.append(1)
        )
        injector.schedule_outage("backend", at=2.0, duration=1.0)
        sim.run_until(5.0)
        # The second script found the component already down (no-op) and
        # its early recovery brought it back up once.
        assert [event.kind for event in injector.log] == ["down", "up"]

    def test_bad_duration_rejected(self):
        injector = FaultInjector(Simulator())
        with pytest.raises(SimulationError):
            injector.schedule_outage("backend", at=1.0, duration=0.0)
