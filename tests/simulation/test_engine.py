"""Unit tests for the discrete-event simulator."""

import pytest

from repro.errors import SimulationError
from repro.simulation import Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(30.0, lambda: fired.append("late"))
        sim.schedule_at(10.0, lambda: fired.append("early"))
        sim.schedule_at(20.0, lambda: fired.append("middle"))
        sim.run()
        assert fired == ["early", "middle", "late"]

    def test_same_time_fifo(self):
        sim = Simulator()
        fired = []
        for label in "abc":
            sim.schedule_at(5.0, lambda l=label: fired.append(l))
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_relative_schedule(self):
        sim = Simulator(start_time=100.0)
        seen = []
        sim.schedule(5.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [105.0]

    def test_past_schedule_rejected(self):
        sim = Simulator(start_time=50.0)
        with pytest.raises(SimulationError):
            sim.schedule_at(49.0, lambda: None)
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_nested_scheduling(self):
        sim = Simulator()
        seen = []

        def outer():
            seen.append(("outer", sim.now))
            sim.schedule(10.0, lambda: seen.append(("inner", sim.now)))

        sim.schedule_at(1.0, outer)
        sim.run()
        assert seen == [("outer", 1.0), ("inner", 11.0)]


class TestCancellation:
    def test_cancelled_event_skipped(self):
        sim = Simulator()
        fired = []
        token = sim.schedule_at(5.0, lambda: fired.append("x"))
        token.cancel()
        sim.run()
        assert fired == []

    def test_cancel_periodic_stops_series(self):
        sim = Simulator()
        fired = []
        token = sim.schedule_periodic(10.0, lambda: fired.append(sim.now))

        def stop():
            token.cancel()

        sim.schedule_at(35.0, stop)
        sim.run_until(100.0)
        assert fired == [10.0, 20.0, 30.0]


class TestPeriodic:
    def test_fires_every_period(self):
        sim = Simulator()
        fired = []
        sim.schedule_periodic(10.0, lambda: fired.append(sim.now), until=50.0)
        sim.run()
        assert fired == [10.0, 20.0, 30.0, 40.0, 50.0]

    def test_first_at_override(self):
        sim = Simulator()
        fired = []
        sim.schedule_periodic(10.0, lambda: fired.append(sim.now), until=30.0, first_at=5.0)
        sim.run()
        assert fired == [5.0, 15.0, 25.0]

    def test_invalid_period(self):
        with pytest.raises(SimulationError):
            Simulator().schedule_periodic(0.0, lambda: None)


class TestRunUntil:
    def test_time_advances_even_with_empty_queue(self):
        sim = Simulator()
        sim.run_until(500.0)
        assert sim.now == 500.0

    def test_future_events_not_fired(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(100.0, lambda: fired.append("later"))
        sim.run_until(50.0)
        assert fired == []
        sim.run_until(150.0)
        assert fired == ["later"]

    def test_backwards_run_rejected(self):
        sim = Simulator()
        sim.run_until(100.0)
        with pytest.raises(SimulationError):
            sim.run_until(50.0)

    def test_events_processed_counter(self):
        sim = Simulator()
        for t in (1.0, 2.0, 3.0):
            sim.schedule_at(t, lambda: None)
        sim.run()
        assert sim.events_processed == 3


class TestRunawayProtection:
    def test_fuse_trips(self):
        sim = Simulator()

        def reschedule():
            sim.schedule(1.0, reschedule)

        sim.schedule(1.0, reschedule)
        with pytest.raises(SimulationError):
            sim.run(max_events=100)
